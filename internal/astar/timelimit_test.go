package astar

import (
	"testing"
	"time"

	"cosched/internal/abort"
	"cosched/internal/degradation"
)

func TestTimeLimitAborts(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	s, err := NewSolver(g, Options{H: HNone, TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("time-limited search errored instead of degrading: %v", err)
	}
	if !res.Stats.Degraded || res.Stats.Aborted != abort.Deadline {
		t.Errorf("time-limited search not flagged degraded/deadline: %+v", res.Stats)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Errorf("degraded schedule invalid: %v", err)
	}
	s2, err := NewSolver(g, Options{H: HPerProc, UseIncumbent: true, TimeLimit: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Solve()
	if err != nil {
		t.Errorf("generous time limit failed: %v", err)
	} else if res2.Stats.Degraded || res2.Stats.Aborted != abort.None {
		t.Errorf("generous time limit flagged degraded: %+v", res2.Stats)
	}
}
