package astar

import (
	"testing"

	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
	"cosched/internal/workload"
)

// syntheticGraphTB is syntheticGraph for benchmarks too (testing.TB).
func syntheticGraphTB(tb testing.TB, n, u int, seed int64, mode degradation.Mode) *graph.Graph {
	tb.Helper()
	m, err := cache.MachineByCores(u)
	if err != nil {
		tb.Fatal(err)
	}
	in, err := workload.SyntheticSerialInstance(n, &m, seed)
	if err != nil {
		tb.Fatal(err)
	}
	return graph.New(in.Cost(mode), in.Patterns)
}

// This file is the micro-benchmark suite of the allocation-free hot path:
// child construction + key packing + dismissal lookup in isolation, and
// AllocsPerRun guards pinning the steady-state allocation count of a
// dismissed child (the overwhelmingly common fate under Theorem-1
// dismissal) at zero. Run with
//
//	go test ./internal/astar/ -bench HotPath -benchmem
//
// and compare against scripts/benchdiff.sh's end-to-end numbers
// (BENCH_astar.json records the solver-level before/after).

// hotPathSolver builds a prepared mid-size serial solver plus a root
// element and one candidate node, without running a search. pairwise
// selects the additive-pairwise oracle (the Fig. 9/13 regime, where the
// child distance needs no memoized node-cost lookup and the hot path is
// fully allocation-free).
func hotPathSolver(tb testing.TB, n, u int, pairwise bool) (*Solver, *element, []job.ProcID) {
	tb.Helper()
	m, err := cache.MachineByCores(u)
	if err != nil {
		tb.Fatal(err)
	}
	var g *graph.Graph
	if pairwise {
		in, err := workload.SyntheticPairwiseInstance(n, &m, 17)
		if err != nil {
			tb.Fatal(err)
		}
		g = graph.New(in.Cost(degradation.ModePC), in.Patterns)
	} else {
		g = syntheticGraphTB(tb, n, u, 17, degradation.ModePC)
	}
	sv, err := NewSolver(g, Options{H: HPerProc})
	if err != nil {
		tb.Fatal(err)
	}
	sv.table = newGTable(sv.keyStride)
	root := sv.rootElement()
	node := make([]job.ProcID, 0, u)
	for p := 1; p <= u; p++ {
		node = append(node, job.ProcID(p))
	}
	return sv, root, node
}

// BenchmarkHotPathMakeChild measures one pooled child construction
// (set copy, Eq. 13 distance, key packing) plus its dismissal probe and
// recycling — the per-candidate cost of the search inner loop.
func BenchmarkHotPathMakeChild(b *testing.B) {
	sv, root, node := hotPathSolver(b, 120, 4, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := sv.makeChildIn(sv.pool, root, node)
		_ = sv.table.find(c.keyWords)
		sv.recycle(c)
	}
}

// BenchmarkHotPathPackKey measures dismissal-key packing alone.
func BenchmarkHotPathPackKey(b *testing.B) {
	sv, root, _ := hotPathSolver(b, 960, 4, true)
	buf := make([]uint64, 0, sv.keyStride)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sv.packKey(buf[:0], root.set, root.jobMax)
	}
}

// BenchmarkHotPathTableInsert measures the open-addressing insert path,
// growth included, against fresh tables.
func BenchmarkHotPathTableInsert(b *testing.B) {
	sv, root, node := hotPathSolver(b, 120, 4, true)
	c := sv.makeChildIn(sv.pool, root, node)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := newGTable(sv.keyStride)
		key := c.keyWords
		kc := append([]uint64(nil), key...)
		for j := 0; j < 256; j++ {
			kc[0] = uint64(j) << 1 // distinct sets, bit 0 unused
			if t.find(kc) < 0 {
				t.insert(kc, float64(j), nil)
			}
		}
	}
}

// BenchmarkHotPathSolveOAStar is the end-to-end anchor: a mid-size OA*
// solve whose allocs/op the pooled hot path holds near-constant in n.
func BenchmarkHotPathSolveOAStar(b *testing.B) {
	sv, _, _ := hotPathSolver(b, 16, 4, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDismissedChildStaysAllocationFree is the hot-path allocation guard:
// once the pool is warm, building a child, probing the dismissal table and
// recycling the child must perform at most 2 allocations per candidate —
// and in practice exactly 0 (the ISSUE budget of ≤ 2 leaves headroom for
// map-internal rehash noise on other platforms).
func TestDismissedChildStaysAllocationFree(t *testing.T) {
	for _, cfg := range []struct {
		name     string
		n, u     int
		pairwise bool
		budget   float64
	}{
		// Additive-pairwise oracle (Fig. 9/13 regime): zero allocations.
		{"pairwise-n120-u4", 120, 4, true, 0},
		{"pairwise-n960-u4", 960, 4, true, 0},
		// Memoized oracle: the node-cost cache key still costs its
		// string; the ISSUE budget of ≤ 2 covers it.
		{"memoized-n120-u4", 120, 4, false, 2},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			sv, root, node := hotPathSolver(t, cfg.n, cfg.u, cfg.pairwise)
			// Warm the pool (and the node-cost cache): the first child
			// allocates its backing storage, every later one reuses it.
			warm := sv.makeChildIn(sv.pool, root, node)
			sv.recycle(warm)
			allocs := testing.AllocsPerRun(200, func() {
				c := sv.makeChildIn(sv.pool, root, node)
				_ = sv.table.find(c.keyWords)
				sv.recycle(c)
			})
			if allocs > cfg.budget {
				t.Fatalf("dismissed child costs %.1f allocs; budget is %.0f", allocs, cfg.budget)
			}
		})
	}
}

// TestPoolReuseDominatesOnSolve checks the Stats surface: on a real solve
// the pool must serve the bulk of elements from the free list and the key
// table must stay under its 3/4 growth ceiling.
func TestPoolReuseDominatesOnSolve(t *testing.T) {
	g := syntheticGraphTB(t, 14, 2, 5, degradation.ModePC)
	res := solveWith(t, g, Options{H: HPerProc, UseIncumbent: true})
	st := res.Stats
	if st.ElemAllocated == 0 || st.ElemReused == 0 {
		t.Fatalf("alloc stats not populated: %+v", st)
	}
	if st.ElemReused < st.ElemAllocated {
		t.Errorf("reuse (%d) should dominate fresh allocation (%d) on a dismissal-heavy solve",
			st.ElemReused, st.ElemAllocated)
	}
	if st.KeyTableEntries <= 0 || st.KeyTableLoad <= 0 || st.KeyTableLoad >= 0.75 {
		t.Errorf("key table stats out of range: entries=%d load=%.3f", st.KeyTableEntries, st.KeyTableLoad)
	}
}
