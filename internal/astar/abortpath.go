package astar

import (
	"fmt"
	"time"

	"cosched/internal/abort"
	"cosched/internal/job"
)

// This file is the anytime-search half of the solver: the per-pop abort
// poll (context, wall clock, expansion cap, memory budget) and the
// degraded-result paths that end an aborted search with the best
// incumbent schedule instead of an error. The poll runs at the TOP of
// the pop loop, before the pop is counted or its expand event emitted,
// so an aborted trace still satisfies the tracetool invariants: every
// counted pop has its expand event, and the admission identity
// Generated == Expanded + Dismissed + BeamTrimmed + InFrontier holds
// with InFrontier measured at the abort point.

// memCheckEvery is the pop interval between memory-footprint estimates:
// the estimate walks the pool list, so it is kept off the per-pop path.
// Must be a power of two (the poll masks with it).
const memCheckEvery = 64

// abortDone returns the context's done channel, or nil when no context
// was configured. Resolved once per solve so the per-pop poll is a
// single non-blocking channel receive.
func (s *Solver) abortDone() <-chan struct{} {
	if s.opts.Ctx != nil {
		return s.opts.Ctx.Done()
	}
	return nil
}

// pollAbort checks every abort condition and returns the triggered
// reason, or abort.None. It runs once per pop before the pop is
// processed and must stay allocation-free (the 0-alloc dismissed-child
// guarantee covers it: see TestDismissedChildAllocFreeWithTracing).
func (s *Solver) pollAbort(done <-chan struct{}, stats *Stats, start time.Time, frontierLen int) abort.Reason {
	if done != nil {
		select {
		case <-done:
			return abort.FromContext(s.opts.Ctx)
		default:
		}
	}
	if s.opts.MaxExpansions > 0 && stats.VisitedPaths >= s.opts.MaxExpansions {
		return abort.Expansions
	}
	if s.opts.TimeLimit > 0 && time.Since(start) > s.opts.TimeLimit {
		return abort.Deadline
	}
	if s.opts.MemoryBudget > 0 && stats.VisitedPaths&(memCheckEvery-1) == 0 &&
		s.memoryFootprint(frontierLen) > s.opts.MemoryBudget {
		return abort.Memory
	}
	return abort.None
}

// memoryFootprint estimates the search's live byte usage: every element
// the pools ever freshly allocated (free-listed elements still occupy
// their storage) at the solver's preallocated capacities, the key
// table's slot and arena storage, and the priority-list entries. An
// estimate, not an accounting — it tracks the dominant growth terms so
// MemoryBudget bounds the frontier before the process dies, which is
// all the budget promises.
func (s *Solver) memoryFootprint(frontierLen int) int64 {
	var alive int64
	for _, p := range s.allPools {
		alive += p.gets - p.reuse
	}
	// Per element: the struct itself plus its backing slices (set words,
	// key words, node, per-job maxima), all sized at solver capacities.
	perElem := int64(112) + 8*int64(s.keySetWords+s.keyStride+s.u+len(s.parJobs))
	bytes := alive * perElem
	if t := s.table; t != nil {
		bytes += int64(len(t.slots))*4 + int64(len(t.keys))*8 + int64(t.count)*16
	}
	return bytes + int64(frontierLen)*40
}

// degradedGroups picks the best schedule an aborted search can still
// return: the incumbent complete sub-path if one was admitted, else the
// precomputed greedy incumbent, else a fresh greedy schedule (the one
// fallback needing no search state at all). Returns the groups and
// their Eq. 13 cost, or nil for a malformed batch.
func (s *Solver) degradedGroups(bestComplete *element, greedyGroups [][]job.ProcID) ([][]job.ProcID, float64) {
	switch {
	case bestComplete != nil:
		return reconstruct(bestComplete), bestComplete.g
	case greedyGroups != nil:
		return greedyGroups, s.cost.PartitionCost(greedyGroups)
	default:
		g := s.greedySchedule()
		if g == nil {
			return nil, 0
		}
		return g, s.cost.PartitionCost(g)
	}
}

// finishAbort stamps the abort on the stats, publishes the abort
// telemetry (counter and trace event), emits the final stats and
// solution events, and builds the degraded Result. inFrontier is the
// admission-identity frontier at the abort point (priority-list length,
// or the beam's mid-depth survivors plus unprocessed frontier).
func (s *Solver) finishAbort(reason abort.Reason, stats *Stats, inFrontier int64,
	groups [][]job.ProcID, cost float64, start time.Time,
	hooks *tracerHooks, met *solverMetrics) (*Result, error) {

	stats.Degraded = true
	stats.Aborted = reason
	stats.InFrontier = inFrontier
	stats.Duration = time.Since(start)
	s.fillAllocStats(stats)
	met.abort(reason)
	if hooks.abort != nil {
		hooks.abort.Abort(stats.VisitedPaths, reason.String())
	}
	if groups == nil {
		return nil, fmt.Errorf("astar: search aborted (%s) with no feasible fallback schedule", reason)
	}
	if hooks.stats != nil {
		hooks.stats.SolveStats(stats)
	}
	if hooks.base != nil {
		hooks.base.Solution(cost, groups)
	}
	return &Result{Groups: groups, Cost: cost, Stats: *stats}, nil
}
