package astar

import (
	"container/heap"
	"math"
	"sort"

	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
)

// forEachCandidate produces the candidate nodes for expanding element e at
// the given valid level: all of them for OA*, or the first KPerLevel valid
// nodes in ascending weight order for HA* (§IV). Candidate nodes sharing a
// condensation key are attempted once when condensation is on (§III-E).
func (s *Solver) forEachCandidate(e *element, leader job.ProcID, avail []job.ProcID, stats *Stats, fn func(node []job.ProcID)) {
	k := s.opts.KPerLevel
	var seen map[string]bool
	if s.opts.Condense && len(s.parJobs) > 0 {
		seen = make(map[string]bool)
	}
	condensed := func(node []job.ProcID) bool {
		if seen == nil {
			return false
		}
		ck := s.gr.CondenseKey(node)
		if seen[ck] {
			stats.Condensed++
			return true
		}
		seen[ck] = true
		return false
	}

	// PE ranks are interchangeable, so with condensation the candidates
	// are enumerated over equivalence classes (one class per PE job,
	// singletons otherwise) instead of raw combinations: the level
	// collapses from C(|avail|, u-1) nodes to a multiset count. This is
	// what makes mixes with large PE jobs (Fig. 6) tractable, especially
	// on 8-core machines.
	if k <= 0 && s.peAll != nil {
		s.forEachClassCandidate(leader, avail, func(node []job.ProcID) bool {
			if !condensed(node) {
				fn(node)
			}
			return true
		})
		return
	}

	if k <= 0 {
		s.gr.ForEachNode(leader, avail, func(node []job.ProcID) bool {
			if !condensed(node) {
				fn(node)
			}
			return true
		})
		return
	}

	if s.pairW != nil && graph.Binomial(len(avail), s.u-1) > smallLevel {
		emitted := 0
		emitFn := func(node []job.ProcID) bool {
			if condensed(node) {
				return true
			}
			fn(node)
			emitted++
			return emitted < k
		}
		if k <= exactLazyMaxK && s.u <= 5 {
			// Exact k-smallest enumeration stays efficient for small
			// budgets and small node cardinalities; its best-first
			// frontier over include/exclude states blows up for large k
			// or deep nodes (u-1 >= 7).
			s.lazyKSmallest(leader, avail, emitFn)
		} else {
			s.anchoredCandidates(leader, avail, k, emitFn)
		}
		return
	}

	// Fallback: enumerate the whole level restricted to avail, sort by
	// weight, attempt the k cheapest. With an additive oracle the weight
	// is a direct pair-cost sum, skipping the memoized-oracle overhead.
	// The nodes live flat (u-stride) in solver scratch and the sort runs
	// over a permutation, so a whole level costs zero steady-state
	// allocations — this path fires on every late depth of the beam runs
	// (once C(|avail|, u-1) drops under smallLevel) and used to dominate
	// the Fig. 13 allocation profile with one node copy per candidate.
	weight := s.cost.NodeWeight
	if s.pairW != nil {
		weight = func(node []job.ProcID) float64 {
			var w float64
			for i := 1; i < len(node); i++ {
				ri := s.pairW[int(node[i])-1]
				for j := 0; j < i; j++ {
					w += ri[int(node[j])-1]
				}
			}
			return w
		}
	}
	u := s.u
	flat := s.candFlat[:0]
	ws := s.candW[:0]
	s.gr.ForEachNode(leader, avail, func(node []job.ProcID) bool {
		flat = append(flat, node...)
		ws = append(ws, weight(node))
		return true
	})
	s.candFlat, s.candW = flat, ws
	nc := len(ws)
	if cap(s.candIdx) < nc {
		s.candIdx = make([]int32, nc)
	}
	idx := s.candIdx[:nc]
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if ws[ia] != ws[ib] {
			return ws[ia] < ws[ib]
		}
		return lessNodes(flat[int(ia)*u:int(ia)*u+u], flat[int(ib)*u:int(ib)*u+u])
	})
	emitted := 0
	for _, id := range idx {
		if emitted >= k {
			break
		}
		node := flat[int(id)*u : int(id)*u+u]
		if condensed(node) {
			continue
		}
		fn(node)
		emitted++
	}
}

const (
	// smallLevel is the node count below which full enumeration + sort
	// beats lazy generation.
	smallLevel = 20000
	// exactLazyMaxK is the largest per-level budget for which the exact
	// lazy k-smallest enumerator is used; beyond it the best-first
	// frontier over include/exclude states degenerates (near-tied
	// bounds), so the greedy-anchored generator takes over.
	exactLazyMaxK = 12
)

// anchoredCandidates approximates the k cheapest nodes of a level at
// scale: the j-th candidate anchors the leader to its j-th cheapest
// partner (by pair cost) and completes the node greedily, which yields k
// diverse low-weight nodes in O(k·u·|avail|) — the HA* trimming spirit of
// §IV without the paper's full level sort, which is infeasible at
// C(n-1, u-1) nodes per level (documented in DESIGN.md §3). All working
// storage (the leader-sorted availability, the membership mask, the node
// under construction and the word-packed dedup set) is solver scratch,
// reused across expansions.
func (s *Solver) anchoredCandidates(leader job.ProcID, avail []job.ProcID, k int, emit func(node []job.ProcID) bool) {
	r := s.u - 1
	m := len(avail)
	if r == 0 {
		emit([]job.ProcID{leader})
		return
	}
	if m < r {
		return
	}
	li := int(leader) - 1
	sorted := append(s.anchSorted[:0], avail...)
	s.anchSorted = sorted
	sort.Slice(sorted, func(a, b int) bool {
		sa, sb := s.pairW[li][int(sorted[a])-1], s.pairW[li][int(sorted[b])-1]
		if sa != sb {
			return sa < sb
		}
		return sorted[a] < sorted[b]
	})
	if len(s.anchInNode) < s.n+1 {
		s.anchInNode = make([]bool, s.n+1)
	}
	inNode := s.anchInNode
	if cap(s.anchNode) < s.u {
		s.anchNode = make([]job.ProcID, 0, s.u)
	}
	node := s.anchNode[:0]
	if s.anchSeen == nil {
		s.anchSeen = newWordSet(nodeKeyStride(s.u))
		s.anchKeyBuf = make([]uint64, 0, s.anchSeen.stride)
	}
	seen := s.anchSeen
	seen.reset()
	for j := 0; j < m; j++ {
		node = node[:0]
		node = append(node, leader, sorted[j])
		inNode[leader], inNode[sorted[j]] = true, true
		for len(node) < s.u {
			best := job.ProcID(0)
			bestInc := math.Inf(1)
			for _, x := range sorted {
				if inNode[x] {
					continue
				}
				var inc float64
				xi := int(x) - 1
				for _, y := range node {
					inc += s.pairW[int(y)-1][xi]
				}
				if inc < bestInc {
					bestInc, best = inc, x
				}
			}
			if best == 0 {
				break
			}
			node = append(node, best)
			inNode[best] = true
		}
		done := len(node) < s.u
		for _, p := range node {
			inNode[p] = false
		}
		inNode[leader] = false
		if done {
			continue
		}
		sortNode(node)
		if !seen.add(packNodeWords(s.anchKeyBuf[:0], node)) {
			continue
		}
		if !emit(node) {
			return
		}
		if seen.count >= k {
			return
		}
	}
}

// nodeKeyStride is the wordSet stride for nodes of u processes packed 16
// bits each.
func nodeKeyStride(u int) int {
	return (u*2 + 7) / 8
}

// packNodeWords packs a sorted node into dst, 16 bits per process
// (little-endian within each word) — the same information content as the
// former nodeKey string, without the allocation.
func packNodeWords(dst []uint64, node []job.ProcID) []uint64 {
	var w uint64
	for i, p := range node {
		w |= uint64(uint16(p)) << (16 * uint(i&3))
		if i&3 == 3 {
			dst = append(dst, w)
			w = 0
		}
	}
	if len(node)&3 != 0 {
		dst = append(dst, w)
	}
	return dst
}

// lessNodes orders nodes lexicographically for deterministic tie-breaks.
func lessNodes(a, b []job.ProcID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// pairWeights extracts the symmetric pair-cost matrix when the batch is
// all-serial and the oracle is additive-pairwise; nil otherwise. With it,
// node weight == sum of pair costs over the node's unordered pairs, which
// enables lazy k-smallest enumeration without touching the whole level.
func (s *Solver) pairWeights() [][]float64 {
	for i := range s.procPar {
		if s.procPar[i] >= 0 {
			return nil
		}
	}
	var inner degradation.Oracle = s.cost.Oracle
	if m, ok := inner.(*degradation.Memoized); ok {
		inner = m.Inner()
	}
	pw, ok := inner.(*degradation.PairwiseOracle)
	if !ok {
		return nil
	}
	m := pw.Matrix()
	s.pairM = m
	w := make([][]float64, s.n)
	for i := 0; i < s.n; i++ {
		w[i] = make([]float64, s.n)
		for j := 0; j < s.n; j++ {
			w[i][j] = m[i][j] + m[j][i]
		}
	}
	return w
}

// lazyKSmallest enumerates the nodes {leader} ∪ S, S ⊆ avail, |S| = u-1,
// in ascending order of node weight without materialising the level. It
// is a best-first search over include/exclude decisions on avail sorted
// by leader-pair cost; the admissible completion bound is the sum of the
// cheapest remaining leader-pair costs. emit returning false stops the
// enumeration.
func (s *Solver) lazyKSmallest(leader job.ProcID, avail []job.ProcID, emit func(node []job.ProcID) bool) {
	r := s.u - 1
	m := len(avail)
	if r == 0 {
		emit([]job.ProcID{leader})
		return
	}
	if m < r {
		return
	}
	li := int(leader) - 1
	// Sort available processes by their pair cost with the leader.
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	scores := make([]float64, m)
	for i, p := range avail {
		scores[i] = s.pairW[li][int(p)-1]
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] < scores[idx[b]]
		}
		return avail[idx[a]] < avail[idx[b]]
	})
	sortedAvail := make([]job.ProcID, m)
	sortedS := make([]float64, m)
	for i, id := range idx {
		sortedAvail[i] = avail[id]
		sortedS[i] = scores[id]
	}
	prefix := make([]float64, m+1)
	for i, v := range sortedS {
		prefix[i+1] = prefix[i] + v
	}
	tail := func(pos, need int) float64 {
		if pos+need > m {
			return math.Inf(1)
		}
		return prefix[pos+need] - prefix[pos]
	}

	var lq lazyQueue
	heap.Init(&lq)
	push := func(members []int32, pos int, exact float64) {
		need := r - len(members)
		b := exact + tail(pos, need)
		if math.IsInf(b, 1) {
			return
		}
		heap.Push(&lq, lazyState{bound: b, exact: exact, members: members, pos: pos})
	}
	push(nil, 0, 0)

	node := make([]job.ProcID, s.u)
	for lq.Len() > 0 {
		st := heap.Pop(&lq).(lazyState)
		if len(st.members) == r {
			node[0] = leader
			for i, mi := range st.members {
				node[i+1] = sortedAvail[mi]
			}
			sortNode(node)
			if !emit(node) {
				return
			}
			continue
		}
		// Include sortedAvail[st.pos].
		inc := st.exact + sortedS[st.pos]
		for _, mi := range st.members {
			inc += s.pairW[int(sortedAvail[mi])-1][int(sortedAvail[st.pos])-1]
		}
		withNew := make([]int32, len(st.members)+1)
		copy(withNew, st.members)
		withNew[len(st.members)] = int32(st.pos)
		push(withNew, st.pos+1, inc)
		// Exclude it.
		push(st.members, st.pos+1, st.exact)
	}
}

// sortNode sorts a node's processes ascending in place (u is tiny, so
// insertion sort).
func sortNode(node []job.ProcID) {
	for i := 1; i < len(node); i++ {
		for j := i; j > 0 && node[j] < node[j-1]; j-- {
			node[j], node[j-1] = node[j-1], node[j]
		}
	}
}

type lazyState struct {
	bound   float64
	exact   float64
	members []int32
	pos     int
}

type lazyQueue []lazyState

func (q lazyQueue) Len() int { return len(q) }
func (q lazyQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return len(q[i].members) > len(q[j].members)
}
func (q lazyQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *lazyQueue) Push(x interface{}) { *q = append(*q, x.(lazyState)) }
func (q *lazyQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
