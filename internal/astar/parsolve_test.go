package astar

import (
	"context"
	"math"
	"testing"
	"time"

	"cosched/internal/abort"
	"cosched/internal/degradation"
)

// This file tests the parallel best-first engine (parsolve.go) and the
// parallel beam path (beam.go): cost equality against the sequential
// solver across the eligible configuration matrix, the admission
// invariant on every run, abort semantics with workers racing, the
// memory-aware load balancer, and the per-worker allocation-free
// dismissed-child guard. Run with -race; scripts/ci.sh does.

// checkInvariant asserts the admission identity that every solve —
// sequential or parallel, completed or aborted — must satisfy.
func checkInvariant(t *testing.T, st *Stats) {
	t.Helper()
	if got := st.Expanded + st.Dismissed + st.BeamTrimmed + st.InFrontier; got != st.Generated {
		t.Errorf("admission identity broken: generated %d != expanded %d + dismissed %d + trimmed %d + frontier %d",
			st.Generated, st.Expanded, st.Dismissed, st.BeamTrimmed, st.InFrontier)
	}
}

// TestParallelCostMatchesSequential is the correctness matrix: every
// eligible configuration solved at parallelism 1 (the exact legacy
// path), 2 and 8 must report the same optimal cost on the same seeded
// instance, and every run must satisfy the admission invariant.
func TestParallelCostMatchesSequential(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"oastar-hnone", Options{H: HNone}},
		{"oastar-hperproc", Options{H: HPerProc}},
		{"hastar-incumbent", Options{H: HPerProc, UseIncumbent: true}},
		{"oastar-condense", Options{H: HPerProc, Condense: true}},
		{"hastar-kperlevel", Options{H: HPerProc, KPerLevel: 3, UseIncumbent: true}},
		{"beam-hperprocavg", Options{H: HPerProcAvg, HWeight: 1.2, BeamWidth: 16, KPerLevel: 3}},
		{"beam-hperproc", Options{H: HPerProc, BeamWidth: 8, KPerLevel: 3}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				g := syntheticGraph(t, 12, 4, seed, degradation.ModePC)
				base := solveWith(t, g, cfg.opts)
				checkInvariant(t, &base.Stats)
				if base.Stats.Parallelism != 1 {
					t.Fatalf("sequential solve reported parallelism %d", base.Stats.Parallelism)
				}
				for _, p := range []int{2, 8} {
					opts := cfg.opts
					opts.Parallelism = p
					res := solveWith(t, g, opts)
					checkInvariant(t, &res.Stats)
					if res.Stats.Parallelism != p {
						t.Errorf("seed %d p=%d: solve ran at parallelism %d", seed, p, res.Stats.Parallelism)
					}
					if math.Abs(res.Cost-base.Cost) > eps {
						t.Errorf("seed %d p=%d: parallel cost %v != sequential %v", seed, p, res.Cost, base.Cost)
					}
				}
			}
		})
	}
}

// TestParallelCostMatchesSequentialMixed repeats the matrix on mixed
// serial+parallel batches (per-job maxima in the dismissal key, the
// Eq. 13 accounting).
func TestParallelCostMatchesSequentialMixed(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := mixedGraph(t, 12, 2, 3, 4, seed, degradation.ModePC)
		base := solveWith(t, g, Options{H: HPerProc})
		for _, p := range []int{2, 8} {
			res := solveWith(t, g, Options{H: HPerProc, Parallelism: p})
			checkInvariant(t, &res.Stats)
			if math.Abs(res.Cost-base.Cost) > eps {
				t.Errorf("seed %d p=%d: parallel cost %v != sequential %v", seed, p, res.Cost, base.Cost)
			}
		}
	}
}

// TestParallelBeamBitIdentical pins the stronger beam guarantee: the
// parallel beam replays the sequential admission order exactly, so not
// just the cost but the groups and every search counter must match.
func TestParallelBeamBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := syntheticGraph(t, 16, 4, seed, degradation.ModePC)
		opts := Options{H: HPerProcAvg, HWeight: 1.2, BeamWidth: 8, KPerLevel: 4}
		base := solveWith(t, g, opts)
		opts.Parallelism = 4
		res := solveWith(t, g, opts)
		if res.Cost != base.Cost {
			t.Errorf("seed %d: beam cost %v != sequential %v", seed, res.Cost, base.Cost)
		}
		if len(res.Groups) != len(base.Groups) {
			t.Fatalf("seed %d: group count %d != %d", seed, len(res.Groups), len(base.Groups))
		}
		for i := range res.Groups {
			for j := range res.Groups[i] {
				if res.Groups[i][j] != base.Groups[i][j] {
					t.Fatalf("seed %d: groups diverge at [%d][%d]", seed, i, j)
				}
			}
		}
		bs, ps := base.Stats, res.Stats
		if ps.VisitedPaths != bs.VisitedPaths || ps.Expanded != bs.Expanded ||
			ps.Generated != bs.Generated || ps.Dismissed != bs.Dismissed ||
			ps.DismissedWorse != bs.DismissedWorse || ps.Condensed != bs.Condensed ||
			ps.BeamTrimmed != bs.BeamTrimmed || ps.InFrontier != bs.InFrontier ||
			ps.MaxQueue != bs.MaxQueue {
			t.Errorf("seed %d: parallel beam stats diverge from sequential:\n  seq: %+v\n  par: %+v", seed, bs, ps)
		}
	}
}

// TestParallelIneligibleFallsBack checks the silent sequential
// fallback: configurations whose answer is order-dependent (weighted or
// lazily-tabled heuristics on the best-first path) run at parallelism 1
// regardless of the request, and still answer optimally.
func TestParallelIneligibleFallsBack(t *testing.T) {
	g := syntheticGraph(t, 12, 4, 1, degradation.ModePC)
	want := solveWith(t, g, Options{H: HNone}).Cost
	for name, opts := range map[string]Options{
		"hstrategy2":  {H: HStrategy2, Parallelism: 4},
		"weighted":    {H: HPerProc, HWeight: 1.5, KPerLevel: 3, Parallelism: 4},
		"beam-tabled": {H: HStrategy2, BeamWidth: 64, KPerLevel: 3, Parallelism: 4},
	} {
		t.Run(name, func(t *testing.T) {
			res := solveWith(t, g, opts)
			if res.Stats.Parallelism != 1 {
				t.Errorf("ineligible config ran at parallelism %d", res.Stats.Parallelism)
			}
			// Only the exact configuration must also stay optimal; the
			// weighted/beam fallbacks answer what their sequential
			// counterparts would.
			if name == "hstrategy2" && math.Abs(res.Cost-want) > eps {
				t.Errorf("fallback cost %v != optimal %v", res.Cost, want)
			}
		})
	}
}

// TestParallelAbortPreCancelled runs the full worker fleet against an
// already-cancelled context: the solve must return a valid degraded
// schedule promptly, with the abort reason classified as Cancel.
func TestParallelAbortPreCancelled(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewSolver(g, Options{H: HPerProc, Parallelism: 8, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	startAt := time.Now()
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if e := time.Since(startAt); e > 2*time.Second {
		t.Errorf("pre-cancelled parallel abort took %v", e)
	}
	if !res.Stats.Degraded || res.Stats.Aborted != abort.Cancel {
		t.Errorf("expected degraded Cancel result, got %+v", res.Stats)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Errorf("degraded schedule invalid: %v", err)
	}
	checkInvariant(t, &res.Stats)
}

// TestParallelAbortMidRun cancels while the workers are expanding. The
// race between cancellation and completion is inherent, so both
// outcomes are accepted; either way the schedule must be valid and the
// invariant must hold.
func TestParallelAbortMidRun(t *testing.T) {
	g := syntheticGraph(t, 18, 2, 2, degradation.ModePC)
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewSolver(g, Options{H: HNone, Parallelism: 4, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded && res.Stats.Aborted != abort.Cancel {
		t.Errorf("degraded result with reason %v, want Cancel", res.Stats.Aborted)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Errorf("schedule invalid after mid-run cancel: %v", err)
	}
	checkInvariant(t, &res.Stats)
}

// TestParallelAbortExpansionCap bounds the shared-counter overshoot:
// with P workers each may claim at most one expansion past the cap
// before the next poll, so VisitedPaths lands in [cap, cap+P].
func TestParallelAbortExpansionCap(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	const p, cap = 4, 3
	s, err := NewSolver(g, Options{H: HPerProc, Parallelism: p, MaxExpansions: cap})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded || res.Stats.Aborted != abort.Expansions {
		t.Fatalf("expected degraded Expansions result, got %+v", res.Stats)
	}
	if v := res.Stats.VisitedPaths; v < cap || v > cap+p {
		t.Errorf("expansion cap %d at parallelism %d popped %d elements (overshoot bound is %d)",
			cap, p, v, cap+p)
	}
	checkInvariant(t, &res.Stats)
}

// TestParallelAbortMemoryBudget: a budget breached by the root alone
// must abort with abort.Memory from the parallel path too.
func TestParallelAbortMemoryBudget(t *testing.T) {
	g := syntheticGraph(t, 16, 4, 1, degradation.ModePC)
	s, err := NewSolver(g, Options{H: HPerProc, Parallelism: 4, MemoryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded || res.Stats.Aborted != abort.Memory {
		t.Errorf("expected degraded Memory result, got %+v", res.Stats)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Errorf("degraded schedule invalid: %v", err)
	}
}

// TestParallelRebalance unit-tests the memory-aware load balancer's
// ramp: full fleet below the soft threshold, a linear park-down between
// soft threshold and budget (never below worker 0), and restoration
// when the footprint falls again.
func TestParallelRebalance(t *testing.T) {
	g := syntheticGraph(t, 12, 4, 1, degradation.ModePC)
	s, err := NewSolver(g, Options{H: HPerProc, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	en := &parEngine{s: s, workers: s.ensureClones(8), table: newStripedTable(s.keyStride, 8)}
	perElem := int64(112) + 8*int64(s.keySetWords+s.keyStride+s.u+len(s.parJobs))

	s.opts.MemoryBudget = 0
	en.activeTarget.Store(8)
	en.rebalance()
	if got := en.activeTarget.Load(); got != 8 {
		t.Errorf("no budget: activeTarget %d, want 8", got)
	}

	s.opts.MemoryBudget = 1000 * perElem // soft threshold at 750 elements
	en.allocElems.Store(100)
	en.rebalance()
	if got := en.activeTarget.Load(); got != 8 {
		t.Errorf("under soft threshold: activeTarget %d, want 8", got)
	}

	en.allocElems.Store(900) // 60% into the soft-to-hard ramp
	en.rebalance()
	if got := en.activeTarget.Load(); got >= 8 || got < 1 {
		t.Errorf("inside ramp: activeTarget %d, want in [1,7]", got)
	}

	en.allocElems.Store(999) // just under the hard budget
	en.rebalance()
	if got := en.activeTarget.Load(); got != 1 {
		t.Errorf("near budget: activeTarget %d, want 1 (worker 0 never parks)", got)
	}

	en.allocElems.Store(100)
	en.rebalance()
	if got := en.activeTarget.Load(); got != 8 {
		t.Errorf("after recovery: activeTarget %d, want 8", got)
	}

	if en.poll() != abort.None {
		t.Error("poll aborted below the budget")
	}
	en.allocElems.Store(1001)
	if en.poll() != abort.Memory {
		t.Error("poll did not abort on a budget breach")
	}
}

// TestParallelWorkerDismissedChildAllocationFree extends the hot-path
// allocation guard to a worker clone: once its pool is warm, building a
// child, probing the shared striped table and recycling must not
// allocate (the pairwise-oracle regime, as in the sequential guard).
func TestParallelWorkerDismissedChildAllocationFree(t *testing.T) {
	sv, _, node := hotPathSolver(t, 120, 4, true)
	workers := sv.ensureClones(2)
	w := workers[1]
	st := newStripedTable(sv.keyStride, 8)
	root := w.rootElement()
	warm := w.makeChildIn(w.pool, root, node)
	st.admit(warm.keyWords, warm.g)
	w.pool.put(warm)
	allocs := testing.AllocsPerRun(200, func() {
		c := w.makeChildIn(w.pool, root, node)
		if g, ok := st.bestG(c.keyWords); !ok || g > c.g {
			t.Fatal("warm key missing from striped table")
		}
		w.pool.put(c)
	})
	if allocs > 0 {
		t.Fatalf("worker dismissed child costs %.1f allocs; want 0", allocs)
	}
}

// TestParallelPoolWarmAcrossSolves: a second parallel solve on the same
// solver reuses the warm worker pools for its dismissed children
// (admitted elements are never recycled, so some fresh allocation
// always remains) and answers identically.
func TestParallelPoolWarmAcrossSolves(t *testing.T) {
	g := syntheticGraph(t, 12, 4, 2, degradation.ModePC)
	s, err := NewSolver(g, Options{H: HPerProc, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(first.Cost-second.Cost) > eps {
		t.Errorf("repeat solve changed cost %v -> %v", first.Cost, second.Cost)
	}
	if reused := second.Stats.ElemReused - first.Stats.ElemReused; reused == 0 {
		t.Error("second solve reused no pooled elements; worker pools should be warm")
	}
}

// TestStripedTableAgreesWithSequential cross-checks the striped best-g
// table against a plain gTable over a shared random key stream.
func TestStripedTableAgreesWithSequential(t *testing.T) {
	sv, err := NewSolver(syntheticGraph(t, 16, 4, 3, degradation.ModePC), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := randFor(11)
	seq := newGTable(sv.keyStride)
	par := newStripedTable(sv.keyStride, 16)
	key := make([]uint64, sv.keyStride)
	for i := 0; i < 4000; i++ {
		for w := range key {
			key[w] = uint64(rng.Intn(64)) << 1
		}
		g := float64(rng.Intn(100))
		ref := seq.find(key)
		wantImproved := ref < 0 || seq.gs[ref] > g
		if ref >= 0 && seq.gs[ref] > g {
			seq.gs[ref] = g
		} else if ref < 0 {
			seq.insert(key, g, nil)
		}
		_, _, improved := par.admit(key, g)
		if improved != wantImproved {
			t.Fatalf("step %d: striped admit improved=%v, sequential says %v", i, improved, wantImproved)
		}
		if ref = seq.find(key); ref >= 0 {
			if got, ok := par.bestG(key); !ok || got != seq.gs[ref] {
				t.Fatalf("step %d: striped bestG %v ok=%v, sequential %v", i, got, ok, seq.gs[ref])
			}
		}
	}
	if int(par.entries.Load()) != seq.count {
		t.Errorf("striped entries %d != sequential count %d", par.entries.Load(), seq.count)
	}
}
