package astar

import (
	"fmt"
	"sync"

	"cosched/internal/job"
)

// validateWorkers rejects worker parallelism for strategies whose lazily
// built tables (per-level statistics) are not safe for concurrent use.
func (s *Solver) validateWorkers() error {
	if s.opts.Workers <= 1 {
		return nil
	}
	switch s.opts.H {
	case HNone, HPerProc, HPerProcAvg:
		return nil
	default:
		return fmt.Errorf("astar: Workers > 1 requires HNone, HPerProc or HPerProcAvg (got %v)", s.opts.H)
	}
}

// workerPool is the persistent expansion crew: Workers goroutines started
// once per solve (startWorkers in Solve, stopped by the deferred stop),
// fed one chunk of candidate nodes per request. The old implementation
// spawned fresh goroutines for every expansion — hundreds of thousands of
// spawns on Fig. 9-scale searches; here the goroutines park on a channel
// between expansions.
//
// Each chunk carries its own element free list (pools[i]): chunks are
// disjoint and a chunk is processed by exactly one worker at a time, so
// makeChildIn never contends, and the solver goroutine may recycle
// dismissed children into those lists between requests (the workers are
// parked then; the channel send/receive orders the accesses).
type workerPool struct {
	s     *Solver
	reqs  chan workerReq
	pools []*elemPool
	done  sync.WaitGroup
}

// workerReq asks for children [lo,hi) of one expansion: node i lives at
// flat[i*u:(i+1)*u], its finished child goes to children[i].
type workerReq struct {
	e        *element
	flat     []job.ProcID
	children []*element
	lo, hi   int
	pool     *elemPool
	wg       *sync.WaitGroup
}

// startWorkers launches the crew. Solve defers stop(), so the goroutines
// never outlive the search.
func (s *Solver) startWorkers() *workerPool {
	wp := &workerPool{s: s, reqs: make(chan workerReq, s.opts.Workers)}
	if s.workerPools == nil {
		// The per-chunk free lists outlive any single crew: a repeated
		// Solve on the same solver starts a fresh crew (goroutines are
		// Solve-scoped) but inherits the warm pools.
		s.workerPools = make([]*elemPool, s.opts.Workers)
		for i := range s.workerPools {
			s.workerPools[i] = s.newPool()
		}
	}
	wp.pools = s.workerPools
	for w := 0; w < s.opts.Workers; w++ {
		wp.done.Add(1)
		go func() {
			defer wp.done.Done()
			u := s.u
			for req := range wp.reqs {
				for i := req.lo; i < req.hi; i++ {
					c := s.makeChildIn(req.pool, req.e, req.flat[i*u:(i+1)*u])
					c.h = s.heuristic(c)
					req.children[i] = c
				}
				req.wg.Done()
			}
		}()
	}
	return wp
}

// stop drains and joins the crew.
func (wp *workerPool) stop() {
	close(wp.reqs)
	wp.done.Wait()
}

// expandParallel evaluates one expansion's candidate children across the
// persistent workers: the oracle queries of makeChildIn and the O(1)
// heuristics run concurrently, then the children are handed to sink in
// candidate order so dismissal and heap behaviour stay deterministic.
func (s *Solver) expandParallel(wp *workerPool, e *element, leader job.ProcID, avail []job.ProcID, stats *Stats, sink func(child *element)) {
	u := s.u
	flat := s.nodeFlat[:0]
	s.forEachCandidate(e, leader, avail, stats, func(node []job.ProcID) {
		flat = append(flat, node...)
	})
	s.nodeFlat = flat
	n := len(flat) / u
	if n == 0 {
		return
	}
	workers := len(wp.pools)
	if workers > n {
		workers = n
	}
	if cap(s.childBuf) < n {
		s.childBuf = make([]*element, n)
	}
	children := s.childBuf[:n]
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		wp.reqs <- workerReq{e: e, flat: flat, children: children, lo: lo, hi: hi, pool: wp.pools[w], wg: &wg}
	}
	wg.Wait()
	for i, c := range children {
		sink(c)
		children[i] = nil
	}
}
