package astar

import (
	"fmt"
	"sync"

	"cosched/internal/job"
)

// validateWorkers rejects worker parallelism for strategies whose lazily
// built tables (per-level statistics) are not safe for concurrent use.
func (s *Solver) validateWorkers() error {
	if s.opts.Workers <= 1 {
		return nil
	}
	switch s.opts.H {
	case HNone, HPerProc, HPerProcAvg:
		return nil
	default:
		return fmt.Errorf("astar: Workers > 1 requires HNone, HPerProc or HPerProcAvg (got %v)", s.opts.H)
	}
}

// expandParallel evaluates one expansion's candidate children across
// worker goroutines: the oracle queries of makeChild and the O(1)
// heuristics run concurrently, then the children are handed to sink in
// candidate order so dismissal and heap behaviour stay deterministic.
func (s *Solver) expandParallel(e *element, leader job.ProcID, avail []job.ProcID, stats *Stats, sink func(child *element)) {
	var nodes [][]job.ProcID
	s.forEachCandidate(e, leader, avail, stats, func(node []job.ProcID) {
		nodes = append(nodes, append([]job.ProcID(nil), node...))
	})
	if len(nodes) == 0 {
		return
	}
	workers := s.opts.Workers
	if workers > len(nodes) {
		workers = len(nodes)
	}
	children := make([]*element, len(nodes))
	var wg sync.WaitGroup
	chunk := (len(nodes) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(nodes) {
			hi = len(nodes)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c := s.makeChild(e, nodes[i])
				c.h = s.heuristic(c)
				children[i] = c
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, c := range children {
		sink(c)
	}
}
