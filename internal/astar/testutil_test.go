package astar

import (
	"math/rand"

	"cosched/internal/bitset"
)

// randFor returns a seeded RNG for synthetic-program construction in
// tests.
func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// newTestSet builds a bit set holding the given values.
func newTestSet(capacity int, vals ...int) *bitset.Set {
	s := bitset.New(capacity)
	for _, v := range vals {
		s.Add(v)
	}
	return s
}
