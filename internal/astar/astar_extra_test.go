package astar

import (
	"math"
	"testing"

	"cosched/internal/bruteforce"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/job"
	"cosched/internal/workload"
)

func TestBeamSearchValidAndBounded(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticPairwiseInstance(48, &m, 9)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(degradation.ModePC), nil)
	s, err := NewSolver(g, Options{H: HPerProcAvg, KPerLevel: 12, BeamWidth: 4, HWeight: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Cost.ValidatePartition(res.Groups); err != nil {
		t.Fatal(err)
	}
	// the beam expands at most BeamWidth elements per depth
	maxPops := int64(4*(48/4) + 1)
	if res.Stats.VisitedPaths > maxPops {
		t.Errorf("beam expanded %d elements; cap is %d", res.Stats.VisitedPaths, maxPops)
	}
}

func TestBeamWiderIsNoWorse(t *testing.T) {
	// A wider beam explores a superset of candidate prefixes per layer,
	// and with deterministic ordering its result should not regress on
	// average. Aggregate over seeds since per-instance inversions are
	// possible (beam search is not monotone in general).
	m := cache.QuadCore
	var narrow, wide float64
	for seed := int64(1); seed <= 6; seed++ {
		in, err := workload.SyntheticPairwiseInstance(48, &m, seed)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.New(in.Cost(degradation.ModePC), nil)
		for _, b := range []int{2, 32} {
			s, err := NewSolver(g, Options{H: HPerProcAvg, KPerLevel: 12, BeamWidth: b, HWeight: 1.2})
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if b == 2 {
				narrow += res.Cost
			} else {
				wide += res.Cost
			}
		}
	}
	if wide > narrow*1.02 {
		t.Errorf("beam 32 total cost %v worse than beam 2 %v", wide, narrow)
	}
}

func TestBeamRejectedForOAStar(t *testing.T) {
	g := syntheticGraph(t, 8, 2, 1, degradation.ModePC)
	if _, err := NewSolver(g, Options{H: HPerProc, BeamWidth: 8}); err == nil {
		t.Error("OA* accepted a beam width")
	}
}

func TestHWeightRejectedForOAStar(t *testing.T) {
	g := syntheticGraph(t, 8, 2, 1, degradation.ModePC)
	if _, err := NewSolver(g, Options{H: HPerProc, HWeight: 1.5}); err == nil {
		t.Error("OA* accepted HWeight > 1")
	}
}

func TestClassEnumerationMatchesRawOptimum(t *testing.T) {
	// With condensation (class enumeration + PE key canonicalisation)
	// the optimum must match the raw search and brute force.
	m := cache.QuadCore
	for seed := int64(1); seed <= 4; seed++ {
		s := workload.NewSpec()
		s.AddPE(workload.SyntheticProgram("pe1", randFor(seed)), 5)
		s.AddPE(workload.SyntheticProgram("pe2", randFor(seed+100)), 4)
		s.AddSerial(workload.SyntheticProgram("s1", randFor(seed+200)))
		s.AddSerial(workload.SyntheticProgram("s2", randFor(seed+300)))
		s.AddSerial(workload.SyntheticProgram("s3", randFor(seed+400)))
		in, err := s.Build(&m)
		if err != nil {
			t.Fatal(err)
		}
		c := in.Cost(degradation.ModePE)
		g := graph.New(c, in.Patterns)
		bf, err := bruteforce.Solve(c)
		if err != nil {
			t.Fatal(err)
		}
		cond := solveWith(t, g, Options{H: HPerProc, Condense: true, ExactParallel: true})
		if math.Abs(cond.Cost-bf.Cost) > eps {
			t.Errorf("seed %d: condensed OA* %v != optimum %v", seed, cond.Cost, bf.Cost)
		}
		raw := solveWith(t, g, Options{H: HPerProc, ExactParallel: true})
		if math.Abs(raw.Cost-bf.Cost) > eps {
			t.Errorf("seed %d: raw OA* %v != optimum %v", seed, raw.Cost, bf.Cost)
		}
		if cond.Stats.Generated >= raw.Stats.Generated {
			t.Errorf("seed %d: class enumeration did not shrink the search: %d vs %d",
				seed, cond.Stats.Generated, raw.Stats.Generated)
		}
		// The paper's plain set-keyed dismissal (Theorem 1) is valid for
		// finding *a* shortest valid path under additive distances, but
		// with Eq. 13's per-job maxima it can dismiss the sub-path that
		// leads to the optimum; it must still produce a valid schedule
		// no cheaper than the optimum (seed 1 exhibits an actual gap,
		// see DESIGN.md §3).
		plain := solveWith(t, g, Options{H: HPerProc, Condense: true})
		if plain.Cost < bf.Cost-eps {
			t.Errorf("seed %d: plain dismissal beat the optimum: %v < %v", seed, plain.Cost, bf.Cost)
		}
	}
}

func TestAnchoredCandidatesAreValidAndCheap(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticPairwiseInstance(64, &m, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(degradation.ModePC), nil)
	s, err := NewSolver(g, Options{H: HPerProcAvg, KPerLevel: 16, BeamWidth: 8, HWeight: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	avail := make([]job.ProcID, 0, 63)
	for p := 2; p <= 64; p++ {
		avail = append(avail, job.ProcID(p))
	}
	var nodes [][]job.ProcID
	s.anchoredCandidates(1, avail, 16, func(node []job.ProcID) bool {
		nodes = append(nodes, append([]job.ProcID(nil), node...))
		return true
	})
	if len(nodes) == 0 {
		t.Fatal("no anchored candidates produced")
	}
	seen := map[string]bool{}
	var worstAnchored float64
	for _, nd := range nodes {
		if nd[0] != 1 || len(nd) != 4 {
			t.Fatalf("bad node %v", nd)
		}
		k := graph.NodeID(nd)
		if seen[k] {
			t.Fatalf("duplicate candidate %v", nd)
		}
		seen[k] = true
		if w := g.Cost.NodeWeight(nd); w > worstAnchored {
			worstAnchored = w
		}
	}
	// Anchored candidates must be cheap relative to the level: compare
	// with the weight of a random-ish (last-indices) node.
	tail := []job.ProcID{1, 62, 63, 64}
	if w := g.Cost.NodeWeight(tail); worstAnchored > w*3 {
		t.Errorf("anchored candidates unexpectedly heavy: worst %v vs arbitrary %v", worstAnchored, w)
	}
}

func TestPEKeyCanonicalisationCollapsesPermutations(t *testing.T) {
	// Two sub-paths scheduling different-but-equivalent PE ranks must
	// share an element key when condensation is on.
	m := cache.QuadCore
	s := workload.NewSpec()
	s.AddPE(workload.SyntheticProgram("pe", randFor(1)), 6)
	s.AddSerial(workload.SyntheticProgram("s1", randFor(2)))
	s.AddSerial(workload.SyntheticProgram("s2", randFor(3)))
	in, err := s.Build(&m)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(degradation.ModePE), in.Patterns)
	sv, err := NewSolver(g, Options{H: HPerProc, Condense: true})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(vals ...int) string {
		set := newTestSet(g.N(), vals...)
		return sv.elementKey(set)
	}
	// PE ranks are procs 1..6; serial are 7,8.
	if mk(1, 2, 7) != mk(3, 5, 7) {
		t.Error("equivalent PE rank subsets have different keys")
	}
	if mk(1, 2, 7) == mk(1, 2, 8) {
		t.Error("different serial content shares a key")
	}
	if mk(1, 2, 7) == mk(1, 2, 3, 7) {
		t.Error("different PE counts share a key")
	}
	// without condensation, raw keys differ
	svRaw, err := NewSolver(g, Options{H: HPerProc})
	if err != nil {
		t.Fatal(err)
	}
	a := svRaw.elementKey(newTestSet(g.N(), 1, 2, 7))
	b := svRaw.elementKey(newTestSet(g.N(), 3, 5, 7))
	if a == b {
		t.Error("raw keys unexpectedly canonicalised")
	}
}

func TestLessNodes(t *testing.T) {
	a := []job.ProcID{1, 2, 3}
	b := []job.ProcID{1, 2, 4}
	if !lessNodes(a, b) || lessNodes(b, a) || lessNodes(a, a) {
		t.Error("lessNodes ordering wrong")
	}
}

func TestStrategy2PairBoundFallback(t *testing.T) {
	// With a tiny enumeration budget the per-level minima fall back to
	// pair-based lower bounds; optimality must survive.
	g := syntheticGraph(t, 12, 4, 4, degradation.ModePC)
	g.EnumLimit = 2 // nothing is enumerable
	s, err := NewSolver(g, Options{H: HStrategy2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	bf, err := bruteforce.Solve(g.Cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-bf.Cost) > eps {
		t.Errorf("pair-bound Strategy 2 lost optimality: %v vs %v", res.Cost, bf.Cost)
	}
}
