package tracetool

import (
	"bytes"
	"strings"
	"testing"

	"cosched/internal/telemetry"
)

// scaleStream builds the trace a serving daemon under load emits: scale
// events (solve id 0, no solve_start) interleaved with real solves.
func scaleStream() []telemetry.Event {
	return []telemetry.Event{
		{Ev: "scale", TMS: 1000, Workers: 2, Reason: "queue_delay_p90=31.2ms>25ms"},
		{Ev: "scale", TMS: 2500, Workers: 3, Reason: "queue_delay_p90=48.0ms>25ms"},
		{Ev: "scale", TMS: 9000, Workers: 2, Reason: "idle=5s"},
		{Ev: "scale", TMS: 14500, Workers: 1, Reason: "idle=5s"},
	}
}

// TestCheckToleratesScaleOnlyTrace: the daemon's scale events carry no
// solve id and no solve_start; check must treat that trace as clean
// rather than flagging missing-solve-start.
func TestCheckToleratesScaleOnlyTrace(t *testing.T) {
	traces := Split(scaleStream())
	if len(traces) != 1 || traces[0].ID != 0 {
		t.Fatalf("Split gave %d traces; want one solve-0 trace", len(traces))
	}
	if vs := Check(traces[0]); len(vs) != 0 {
		t.Errorf("scale-only trace flagged: %v", vs)
	}
}

func TestWriteScalingRendersTimeline(t *testing.T) {
	traces := Split(scaleStream())
	var buf bytes.Buffer
	if err := WriteScaling(&buf, traces); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"4 events", "workers 1..3",
		"queue_delay_p90=31.2ms>25ms", "idle=5s",
		"###", // the peak pool size as a bar
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Grows marked +, shrinks marked - (first event has no baseline).
	if !strings.Contains(out, "+  3") || !strings.Contains(out, "-  1") {
		t.Errorf("timeline lacks grow/shrink direction markers:\n%s", out)
	}
}

func TestWriteScalingEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteScaling(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no scale events") {
		t.Errorf("empty stream output = %q; want a no-scale-events note", buf.String())
	}
}

// TestCheckScaleEventsBesideSolves: a flight-recorder dump from a busy
// daemon mixes scale events with complete solve traces; every trace in
// the split must come out clean.
func TestCheckScaleEventsBesideSolves(t *testing.T) {
	events := scaleStream()
	events = append(events,
		telemetry.Event{Ev: "span_start", SolveID: 7, Span: "solve", TMS: 1100},
		telemetry.Event{Ev: "span_end", SolveID: 7, Span: "solve", TMS: 1200, DurMS: 100},
	)
	for _, tr := range Split(events) {
		if vs := Check(tr); len(vs) != 0 {
			t.Errorf("solve %d flagged: %v", tr.ID, vs)
		}
	}
}
