package tracetool

import (
	"fmt"
	"io"
	"strings"

	"cosched/internal/telemetry"
)

// ScaleEvents collects the serving layer's autoscale events from a
// split trace stream, in emission order. Scale events belong to no
// solve (the daemon's worker pool outlives any one request), so Split
// files them under solve id 0 alongside any legacy events; this pulls
// them back out for the scaling timeline.
func ScaleEvents(traces []*Trace) []telemetry.Event {
	var out []telemetry.Event
	for _, tr := range traces {
		for _, ev := range tr.Events {
			if ev.Ev == "scale" {
				out = append(out, ev)
			}
		}
	}
	return out
}

// WriteScaling renders the daemon's worker-pool history as an ASCII
// timeline: one line per autoscale event with its offset from server
// start, the pool size after the event as a bar, and the autoscaler's
// recorded reason (queue-delay pressure for grows, sustained idleness
// for shrinks). A stream with no scale events renders a note saying so
// — the pool never moved, or the daemon ran with a fixed pool
// (workers-min == workers-max starts no autoscaler).
func WriteScaling(w io.Writer, traces []*Trace) error {
	events := ScaleEvents(traces)
	if len(events) == 0 {
		_, err := io.WriteString(w, "no scale events: the worker pool never resized (fixed pool, or load never moved the autoscaler)\n")
		return err
	}
	var sb strings.Builder
	minW, maxW := events[0].Workers, events[0].Workers
	for _, ev := range events {
		if ev.Workers < minW {
			minW = ev.Workers
		}
		if ev.Workers > maxW {
			maxW = ev.Workers
		}
	}
	span := (events[len(events)-1].TMS - events[0].TMS) / 1000
	fmt.Fprintf(&sb, "=== autoscale timeline: %d events over %.1fs, workers %d..%d ===\n",
		len(events), span, minW, maxW)
	prev := -1
	for _, ev := range events {
		dir := "  "
		switch {
		case prev >= 0 && ev.Workers > prev:
			dir = "+ "
		case prev >= 0 && ev.Workers < prev:
			dir = "- "
		}
		bar := ev.Workers
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&sb, "  t=+%8.2fs  %s%2d %-*s  %s\n",
			ev.TMS/1000, dir, ev.Workers, maxW, strings.Repeat("#", bar), ev.Reason)
		prev = ev.Workers
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
