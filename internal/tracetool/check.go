package tracetool

import (
	"fmt"
	"math"
	"strings"

	"cosched/internal/telemetry"
)

// Violation is one failed trace invariant.
type Violation struct {
	// Invariant names the violated rule (e.g. "admission-identity",
	// "f-monotone", "dismiss-count").
	Invariant string
	// Detail explains the failure with the offending values.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Invariant, v.Detail)
}

// costEps is the tolerance for cost comparisons: trace costs round-trip
// through JSON float formatting.
const costEps = 1e-9

// Check replays one solve's trace against the invariants its producer
// guarantees and returns every violation found (nil for a clean trace).
//
// Search traces (OA*, HA*, beam):
//
//   - admission-identity: the stats event must reconcile as
//     Generated == Expanded + DismissedStale + BeamTrimmed + InFrontier.
//   - f-monotone (sequential OA* only): popped f = g + h never decreases
//     — the Theorem 2 optimality argument rests on this. A parallel
//     solve (solve_start carries parallelism > 1) interleaves its
//     workers' pops, so only total-based rules apply to it: expansion
//     order, per-pop monotonicity and goal-pop bounds are meaningless
//     across racing workers, and the parallel engine never pops its
//     goal at all.
//   - expand-count / dismiss-count: with sampling off, the event stream
//     must carry exactly the expansions and per-reason dismissals the
//     stats event counted.
//   - dismiss-reason: every dismissal names a known reason.
//   - solution-cost: the solution can be no cheaper than the goal pop
//     that produced it allows (an incumbent may beat the popped goal,
//     never the reverse).
//   - solution-groups: the schedule is a partition of processes 1..N
//     with no machine over capacity.
//   - abort-reason (all solver traces): a degraded solve carries at most
//     one abort event, its reason one of deadline|cancel|expansions|
//     memory, and the solution event repeats the reason; a completed
//     solve carries neither. Degraded solves are otherwise held to the
//     same admission identity and partition validity as completed ones —
//     only the solution-cost rule is waived, because a degraded answer
//     is an incumbent or greedy fallback, not the popped goal.
//
// IP traces: incumbent-monotone (bounds only improve) and
// solution-cost (the solution equals the final incumbent).
//
// Online traces: online-causality (arrival before placement before
// completion per job, on a non-decreasing simulated clock) and
// online-completion (every job's chain completes).
//
// Truncated traces (Trace.Truncated) skip the stats- and
// solution-dependent rules: a killed producer is not a broken one.
func Check(tr *Trace) []Violation {
	var vs []Violation
	start := tr.start()
	if start == nil {
		if tr.onlySpans() {
			return nil
		}
		if tr.Truncated {
			// A tail window (flight-recorder dump) lost its solve_start;
			// the reason whitelist is the one rule that needs no header.
			return checkDismissReasons(tr)
		}
		return []Violation{{"missing-solve-start", fmt.Sprintf("solve %d has %d events but no solve_start", tr.ID, len(tr.Events))}}
	}
	switch tr.kind() {
	case "ip":
		vs = append(vs, checkIP(tr)...)
	case "online":
		vs = append(vs, checkOnline(tr, start)...)
	default:
		vs = append(vs, checkSearch(tr, start)...)
	}
	vs = append(vs, checkAbort(tr)...)
	return vs
}

// checkAbort applies the abort-reason rule: a degraded solve emits
// exactly one abort event with a known reason, echoed by the solution
// event; a completed solve emits neither.
func checkAbort(tr *Trace) []Violation {
	var vs []Violation
	var aborts []telemetry.Event
	for i, ev := range tr.Events {
		if ev.Ev != "abort" {
			continue
		}
		switch ev.Reason {
		case "deadline", "cancel", "expansions", "memory":
		default:
			vs = append(vs, Violation{"abort-reason",
				fmt.Sprintf("event %d: unknown abort reason %q", i, ev.Reason)})
		}
		aborts = append(aborts, ev)
	}
	if len(aborts) > 1 {
		vs = append(vs, Violation{"abort-reason",
			fmt.Sprintf("trace carries %d abort events, at most 1 expected", len(aborts))})
	}
	sol := tr.solution()
	if sol == nil {
		return vs
	}
	if len(aborts) == 0 {
		if sol.Reason != "" {
			vs = append(vs, Violation{"abort-reason",
				fmt.Sprintf("solution flagged degraded (%q) but no abort event precedes it", sol.Reason)})
		}
		return vs
	}
	if sol.Reason != aborts[0].Reason {
		vs = append(vs, Violation{"abort-reason",
			fmt.Sprintf("solution reason %q != abort event reason %q", sol.Reason, aborts[0].Reason)})
	}
	return vs
}

// checkDismissReasons applies the dismiss-reason whitelist alone, for
// headless tail windows where no other rule can run.
func checkDismissReasons(tr *Trace) []Violation {
	var vs []Violation
	for i, ev := range tr.Events {
		if ev.Ev != "dismiss" {
			continue
		}
		switch ev.Reason {
		case "stale", "worse", "pruned", "beam_trim":
		default:
			vs = append(vs, Violation{"dismiss-reason",
				fmt.Sprintf("event %d (pop %d): unknown dismiss reason %q", i, ev.Pop, ev.Reason)})
		}
	}
	return vs
}

// onlySpans reports whether the trace carries nothing but ambient
// events — spans (a solve observed through a SpanRecorder alone),
// serving-layer scale, cache and request events, and fleet-client
// events, which belong to no solve (a rejected request never got one)
// and so arrive with solve id 0 and no solve_start header.
func (t *Trace) onlySpans() bool {
	for _, ev := range t.Events {
		switch ev.Ev {
		case "span_start", "span_end", "scale", "cache", "request",
			"client_attempt", "client_request", "client_breaker":
		default:
			return false
		}
	}
	return len(t.Events) > 0
}

func checkSearch(tr *Trace, start *telemetry.Event) []Violation {
	var vs []Violation
	sampled := start.Sample > 1
	dismissSampled := start.DismissSample > 1
	method := start.Method
	// Order-sensitive rules only hold for a single expansion worker.
	parallel := start.Parallelism > 1

	var (
		expandCount   int64
		dismissCounts = map[string]int64{}
		prevF         = math.Inf(-1)
		goalG         = math.NaN()
	)
	for i, ev := range tr.Events {
		switch ev.Ev {
		case "expand":
			expandCount++
			if method == "OA*" && !parallel {
				f := ev.G + ev.H
				if f < prevF-costEps {
					vs = append(vs, Violation{"f-monotone",
						fmt.Sprintf("event %d (pop %d): popped f %.9f after %.9f", i, ev.Pop, f, prevF)})
				}
				if f > prevF {
					prevF = f
				}
			}
			if ev.Leader == 0 {
				goalG = ev.G
			}
		case "dismiss":
			switch ev.Reason {
			case "stale", "worse", "pruned", "beam_trim":
				dismissCounts[ev.Reason]++
			default:
				vs = append(vs, Violation{"dismiss-reason",
					fmt.Sprintf("event %d (pop %d): unknown dismiss reason %q", i, ev.Pop, ev.Reason)})
			}
		}
	}

	st := tr.stats()
	if st == nil {
		if !tr.Truncated {
			vs = append(vs, Violation{"missing-stats", "trace has no stats event (and is not truncated)"})
		}
		return vs
	}
	if got := st.Expanded + st.DismissedStale + st.BeamTrimmed + st.InFrontier; got != st.Generated {
		vs = append(vs, Violation{"admission-identity",
			fmt.Sprintf("generated %d != expanded %d + dismissed_stale %d + beam_trimmed %d + in_frontier %d = %d",
				st.Generated, st.Expanded, st.DismissedStale, st.BeamTrimmed, st.InFrontier, got)})
	}
	if !sampled && expandCount != st.Visited {
		vs = append(vs, Violation{"expand-count",
			fmt.Sprintf("trace has %d expand events, stats counted %d visited paths", expandCount, st.Visited)})
	}
	if !dismissSampled {
		for _, want := range []struct {
			reason string
			n      int64
		}{
			{"stale", st.DismissedStale}, {"worse", st.DismissedWorse},
			{"pruned", st.Pruned}, {"beam_trim", st.BeamTrimmed},
		} {
			if dismissCounts[want.reason] != want.n {
				vs = append(vs, Violation{"dismiss-count",
					fmt.Sprintf("trace has %d %q dismissals, stats counted %d",
						dismissCounts[want.reason], want.reason, want.n)})
			}
		}
	}

	sol := tr.solution()
	if sol == nil {
		if !tr.Truncated {
			vs = append(vs, Violation{"missing-solution", "trace has no solution event (and is not truncated)"})
		}
		return vs
	}
	// A degraded solution is the best incumbent (possibly a greedy
	// fallback), which no popped goal bounds — the rule only applies to
	// completed solves.
	if !sampled && !math.IsNaN(goalG) && sol.Reason == "" && sol.Cost > goalG+costEps {
		vs = append(vs, Violation{"solution-cost",
			fmt.Sprintf("solution cost %.9f exceeds the goal pop's g %.9f", sol.Cost, goalG)})
	}
	vs = append(vs, checkGroups(sol.Groups, start.N, start.U)...)
	return vs
}

func checkIP(tr *Trace) []Violation {
	var vs []Violation
	prev := math.Inf(1)
	for i, ev := range tr.Events {
		if ev.Ev != "incumbent" {
			continue
		}
		if ev.Cost > prev+costEps {
			vs = append(vs, Violation{"incumbent-monotone",
				fmt.Sprintf("event %d: incumbent %.9f after %.9f", i, ev.Cost, prev)})
		}
		prev = ev.Cost
	}
	sol := tr.solution()
	if sol == nil {
		if !tr.Truncated {
			vs = append(vs, Violation{"missing-solution", "trace has no solution event (and is not truncated)"})
		}
		return vs
	}
	if !math.IsInf(prev, 1) && math.Abs(sol.Cost-prev) > costEps {
		vs = append(vs, Violation{"solution-cost",
			fmt.Sprintf("solution cost %.9f != final incumbent %.9f", sol.Cost, prev)})
	}
	if st := tr.start(); st != nil && len(sol.Groups) > 0 {
		vs = append(vs, checkGroups(sol.Groups, st.N, st.U)...)
	}
	return vs
}

func checkOnline(tr *Trace, start *telemetry.Event) []Violation {
	var vs []Violation
	type chain struct{ arrived, placed, done bool }
	chains := map[int]*chain{}
	get := func(j int) *chain {
		if chains[j] == nil {
			chains[j] = &chain{}
		}
		return chains[j]
	}
	prevT := math.Inf(-1)
	for i, ev := range tr.Events {
		switch ev.Ev {
		case "arrival":
			get(ev.Job).arrived = true
		case "place":
			ch := get(ev.Job)
			if !ch.arrived {
				vs = append(vs, Violation{"online-causality",
					fmt.Sprintf("event %d: job %d placed before arriving", i, ev.Job)})
			}
			ch.placed = true
		case "job_done":
			ch := get(ev.Job)
			if !ch.placed {
				vs = append(vs, Violation{"online-causality",
					fmt.Sprintf("event %d: job %d finished before being placed", i, ev.Job)})
			}
			ch.done = true
		case "span_start", "span_end", "solve_start", "solution", "stats":
			continue
		}
		if ev.T < prevT-costEps {
			vs = append(vs, Violation{"online-causality",
				fmt.Sprintf("event %d: simulated clock went backwards (%v after %v)", i, ev.T, prevT)})
		}
		if ev.T > prevT {
			prevT = ev.T
		}
	}
	if tr.Truncated {
		return vs
	}
	var incomplete []string
	for j, ch := range chains {
		if !ch.arrived || !ch.placed || !ch.done {
			incomplete = append(incomplete, fmt.Sprintf("%d", j))
		}
	}
	if len(incomplete) > 0 {
		vs = append(vs, Violation{"online-completion",
			fmt.Sprintf("jobs %s have incomplete arrival→place→done chains", strings.Join(incomplete, ","))})
	}
	if start.N > 0 && len(chains) != start.N {
		vs = append(vs, Violation{"online-completion",
			fmt.Sprintf("trace covers %d jobs, solve_start declared %d", len(chains), start.N)})
	}
	if tr.solution() == nil {
		vs = append(vs, Violation{"missing-solution", "trace has no solution event (and is not truncated)"})
	}
	return vs
}

// checkGroups validates a solution partition: every process 1..n exactly
// once, no machine over u cores.
func checkGroups(groups [][]int, n, u int) []Violation {
	if len(groups) == 0 || n == 0 {
		return nil
	}
	var vs []Violation
	seen := make([]int, n+1)
	for mi, g := range groups {
		if u > 0 && len(g) > u {
			vs = append(vs, Violation{"solution-groups",
				fmt.Sprintf("machine %d holds %d processes, capacity %d", mi, len(g), u)})
		}
		for _, p := range g {
			if p < 1 || p > n {
				vs = append(vs, Violation{"solution-groups",
					fmt.Sprintf("machine %d holds process %d outside 1..%d", mi, p, n)})
				continue
			}
			seen[p]++
		}
	}
	for p := 1; p <= n; p++ {
		if seen[p] != 1 {
			vs = append(vs, Violation{"solution-groups",
				fmt.Sprintf("process %d appears %d times in the schedule", p, seen[p])})
		}
	}
	return vs
}
