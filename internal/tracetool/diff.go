package tracetool

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// DiffRow is one counter's before/after pair.
type DiffRow struct {
	// Name is the counter or phase label ("generated",
	// "phase:search_ms", ...).
	Name string
	// A and B are the values in the two traces (NaN when one side
	// lacks the counter).
	A, B float64
}

// delta renders the relative change.
func (r DiffRow) delta() string {
	switch {
	case math.IsNaN(r.A):
		return "added"
	case math.IsNaN(r.B):
		return "removed"
	case r.A == r.B:
		return "="
	case r.A == 0:
		return fmt.Sprintf("%+.6g", r.B)
	default:
		return fmt.Sprintf("%+.1f%%", 100*(r.B-r.A)/r.A)
	}
}

// DiffReport compares two solves counter by counter.
type DiffReport struct {
	// Rows holds the per-counter and per-phase comparisons.
	Rows []DiffRow
	// CostMismatch reports that the two solves reached different
	// solution costs — the signal coschedtrace diff exits non-zero on.
	CostMismatch bool
}

// Diff compares two solves: the stats counters, the solution cost and
// the phase durations. A cost difference beyond the JSON round-trip
// tolerance sets CostMismatch.
func Diff(a, b *Trace) *DiffReport {
	rep := &DiffReport{}
	orderA, ca := a.counters()
	orderB, cb := b.counters()
	seen := map[string]bool{}
	for _, name := range append(append([]string{}, orderA...), orderB...) {
		if seen[name] {
			continue
		}
		seen[name] = true
		row := DiffRow{Name: name, A: math.NaN(), B: math.NaN()}
		if v, ok := ca[name]; ok {
			row.A = v
		}
		if v, ok := cb[name]; ok {
			row.B = v
		}
		rep.Rows = append(rep.Rows, row)
	}
	pa, pb := phaseMap(a), phaseMap(b)
	for _, ph := range append(a.phases(), b.phases()...) {
		name := "phase:" + ph.name + "_ms"
		if seen[name] {
			continue
		}
		seen[name] = true
		row := DiffRow{Name: name, A: math.NaN(), B: math.NaN()}
		if v, ok := pa[ph.name]; ok {
			row.A = v
		}
		if v, ok := pb[ph.name]; ok {
			row.B = v
		}
		rep.Rows = append(rep.Rows, row)
	}
	if sa, sb := a.solution(), b.solution(); sa != nil && sb != nil {
		rep.CostMismatch = math.Abs(sa.Cost-sb.Cost) > costEps
	}
	return rep
}

func phaseMap(t *Trace) map[string]float64 {
	out := map[string]float64{}
	for _, ph := range t.phases() {
		out[ph.name] += ph.durMS
	}
	return out
}

// WriteDiff renders the report as an aligned table.
func WriteDiff(w io.Writer, a, b *Trace, rep *DiffReport) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "A: %s\nB: %s\n", a.label(), b.label())
	nameW, aW, bW := len("counter"), len("A"), len("B")
	cells := make([][3]string, len(rep.Rows))
	fmtSide := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmtCount(v)
	}
	for i, row := range rep.Rows {
		cells[i] = [3]string{row.Name, fmtSide(row.A), fmtSide(row.B)}
		nameW = max(nameW, len(cells[i][0]))
		aW = max(aW, len(cells[i][1]))
		bW = max(bW, len(cells[i][2]))
	}
	fmt.Fprintf(&sb, "%-*s  %*s  %*s  %s\n", nameW, "counter", aW, "A", bW, "B", "delta")
	for i, row := range rep.Rows {
		fmt.Fprintf(&sb, "%-*s  %*s  %*s  %s\n",
			nameW, cells[i][0], aW, cells[i][1], bW, cells[i][2], row.delta())
	}
	if rep.CostMismatch {
		sb.WriteString("COST MISMATCH: the two solves reached different solutions\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
