package tracetool

import (
	"bytes"
	"strings"
	"testing"

	"cosched/internal/telemetry"
)

// cacheStream builds the trace a spill-backed daemon emits: a boot
// replay, stores as misses land, and a bound-driven eviction.
func cacheStream() []telemetry.Event {
	return []telemetry.Event{
		{Ev: "cache", TMS: 10, Reason: "replay", N: 5, Bytes: 1500},
		{Ev: "cache", TMS: 1200, Reason: "store", N: 1, Bytes: 1800},
		{Ev: "cache", TMS: 2400, Reason: "store", N: 1, Bytes: 2100},
		{Ev: "cache", TMS: 2401, Reason: "evict", N: 1, Bytes: 1800},
	}
}

// TestCheckToleratesCacheOnlyTrace: cache events carry no solve id and
// no solve_start, like scale events; check must treat the trace as
// clean rather than flagging missing-solve-start.
func TestCheckToleratesCacheOnlyTrace(t *testing.T) {
	traces := Split(cacheStream())
	if len(traces) != 1 || traces[0].ID != 0 {
		t.Fatalf("Split gave %d traces; want one solve-0 trace", len(traces))
	}
	if vs := Check(traces[0]); len(vs) != 0 {
		t.Errorf("cache-only trace flagged: %v", vs)
	}
}

func TestWriteCacheRendersTimeline(t *testing.T) {
	traces := Split(cacheStream())
	var buf bytes.Buffer
	if err := WriteCache(&buf, traces); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"4 events", "peak 2100 bytes",
		"replay", "store", "evict",
		"total: 5 replayed, 2 stored, 1 evicted",
		"####", // the byte charge as a bar
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCacheEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCache(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no cache events") {
		t.Errorf("empty stream output = %q; want a no-cache-events note", buf.String())
	}
}
