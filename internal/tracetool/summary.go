package tracetool

import (
	"fmt"
	"io"
	"strings"
)

// WriteSummary renders one solve's accounting as an aligned text block:
// identity line, phase breakdown, the stats-event counters, the depth
// profile of the expansions and the pop rate.
func WriteSummary(w io.Writer, tr *Trace) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", tr.label())
	if st := tr.start(); st != nil {
		fmt.Fprintf(&sb, "method %s", st.Method)
		if st.HName != "" {
			fmt.Fprintf(&sb, ", heuristic %s", st.HName)
		}
		if st.N > 0 {
			fmt.Fprintf(&sb, ", %d processes", st.N)
		}
		if st.U > 0 {
			fmt.Fprintf(&sb, " on %d-core machines", st.U)
		}
		if st.Parallelism > 1 {
			fmt.Fprintf(&sb, ", %d expansion workers", st.Parallelism)
		}
		if st.Sample > 1 {
			fmt.Fprintf(&sb, " (expand events sampled 1/%d)", st.Sample)
		}
		sb.WriteByte('\n')
	}
	if tr.Truncated {
		sb.WriteString("note: truncated trace (torn line or ring tail window); counters below may be partial\n")
	}
	if phases := tr.phases(); len(phases) > 0 {
		parts := make([]string, len(phases))
		for i, ph := range phases {
			parts[i] = fmt.Sprintf("%s %.3fms", ph.name, ph.durMS)
		}
		fmt.Fprintf(&sb, "phases: %s\n", strings.Join(parts, ", "))
	}
	order, counters := tr.counters()
	width := 0
	for _, name := range order {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range order {
		fmt.Fprintf(&sb, "  %-*s  %s\n", width, name, fmtCount(counters[name]))
	}
	if pps := tr.popsPerSec(); pps > 0 {
		fmt.Fprintf(&sb, "  %-*s  %.0f\n", width, "pops_per_sec", pps)
	}
	if depths, counts := tr.depthProfile(); len(depths) > 1 {
		var max int64
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		sb.WriteString("expansions by depth:\n")
		for i, d := range depths {
			bar := int(counts[i] * 40 / max)
			fmt.Fprintf(&sb, "  depth %3d  %8d  %s\n", d, counts[i], strings.Repeat("#", bar))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
