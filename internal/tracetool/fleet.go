package tracetool

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cosched/internal/telemetry"
)

// FleetEvents collects the fleet client's events — client_attempt,
// client_request, client_breaker — from a split trace stream, ordered
// by emission time. The client runs no solver, so Split files all of
// them into the ambient (id 0) trace, but the collector walks every
// trace for robustness against mixed streams.
func FleetEvents(traces []*Trace) []telemetry.Event {
	var out []telemetry.Event
	for _, tr := range traces {
		for _, ev := range tr.Events {
			switch ev.Ev {
			case "client_attempt", "client_request", "client_breaker":
				out = append(out, ev)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TMS < out[j].TMS })
	return out
}

// WriteFleet renders a fleet-client trace (coschedload -client-trace)
// as a chronology: one row per physical attempt with its replica and
// verdict, one summary row per logical request, and breaker transitions
// inline where they happened. The req_id column is the join key into
// every replica's access log and /debug/requests ring — a failed-over
// request shows the same ID attempted on different replicas with
// increasing attempt numbers, which is how the chaos gate proves
// request-identity continuity.
func WriteFleet(w io.Writer, traces []*Trace) error {
	events := FleetEvents(traces)
	if len(events) == 0 {
		_, err := io.WriteString(w, "no fleet-client events: the trace was not captured from coschedclient (try coschedload -replicas ... -client-trace)\n")
		return err
	}
	var requests, attempts, retried, hedged, transitions int
	for _, ev := range events {
		switch ev.Ev {
		case "client_request":
			requests++
			if ev.Attempt > 1 {
				retried++
			}
		case "client_attempt":
			attempts++
			if ev.Hedged {
				hedged++
			}
		case "client_breaker":
			transitions++
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== fleet: %d requests, %d attempts (%d multi-attempt, %d hedged), %d breaker transitions ===\n",
		requests, attempts, retried, hedged, transitions)
	fmt.Fprintf(&sb, "%10s  %-15s  %-24s  %3s  %7s  %-3s  %9s  %s\n",
		"t_ms", "event", "req_id", "st", "attempt", "hdg", "dur_ms", "detail")
	for _, ev := range events {
		switch ev.Ev {
		case "client_attempt":
			fmt.Fprintf(&sb, "%10.1f  %-15s  %-24s  %3d  %7d  %-3s  %9.2f  %s\n",
				ev.TMS, "attempt", ev.ReqID, ev.Status, ev.Attempt,
				yesNo(ev.Hedged), ev.DurMS, replicaDetail(ev.Replica, ev.Reason))
		case "client_request":
			fmt.Fprintf(&sb, "%10.1f  %-15s  %-24s  %3d  %7d  %-3s  %9.2f  %s\n",
				ev.TMS, "request", ev.ReqID, ev.Status, ev.Attempt,
				yesNo(ev.Hedged), ev.TotalMS, replicaDetail(ev.Replica, ev.Reason))
		case "client_breaker":
			fmt.Fprintf(&sb, "%10.1f  %-15s  %-24s  %3s  %7s  %-3s  %9s  %s\n",
				ev.TMS, "breaker:"+ev.Breaker, "-", "", "", "", "",
				replicaDetail(ev.Replica, ev.Reason))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// yesNo compresses a bool for a table cell.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return ""
}

// replicaDetail joins a replica address and a reason into one detail
// cell, skipping empty parts.
func replicaDetail(replica, reason string) string {
	switch {
	case replica == "" && reason == "":
		return ""
	case reason == "":
		return replica
	case replica == "":
		return reason
	}
	return replica + " (" + reason + ")"
}
