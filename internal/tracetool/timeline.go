package tracetool

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// timeline plot geometry: fits a terminal without wrapping.
const (
	plotWidth  = 64
	plotHeight = 12
)

// WriteTimeline renders ASCII charts of the solve's progress over pops:
// the popped g ('g') and estimate h ('h', '+' where they overlap) from
// the expand events, then the frontier size from the progress events
// when the trace has any. Traces without expand events (IP, online) get
// their incumbent/clock trajectory instead.
func WriteTimeline(w io.Writer, tr *Trace) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", tr.label())

	var pops, gs, hs []float64
	for _, ev := range tr.Events {
		if ev.Ev == "expand" {
			pops = append(pops, float64(ev.Pop))
			gs = append(gs, ev.G)
			hs = append(hs, ev.H)
		}
	}
	if len(pops) > 1 {
		sb.WriteString("popped g (g) and h estimate (h) vs pop:\n")
		plot(&sb, pops, [][]float64{gs, hs}, []byte{'g', 'h'})
	}

	var ppops, frontier []float64
	for _, ev := range tr.Events {
		if ev.Ev == "progress" {
			ppops = append(ppops, float64(ev.Pop))
			frontier = append(frontier, float64(ev.Frontier))
		}
	}
	if len(ppops) > 1 {
		sb.WriteString("frontier size (f) vs pop:\n")
		plot(&sb, ppops, [][]float64{frontier}, []byte{'f'})
	}

	if len(pops) <= 1 && len(ppops) <= 1 {
		// IP / online traces: chart the incumbent (or simulated-clock
		// completion) trajectory.
		var xs, ys []float64
		for _, ev := range tr.Events {
			switch ev.Ev {
			case "incumbent":
				xs = append(xs, float64(ev.Pop))
				ys = append(ys, ev.Cost)
			case "job_done":
				xs = append(xs, ev.T)
				ys = append(ys, float64(len(ys)+1))
			}
		}
		switch {
		case len(xs) > 1 && tr.kind() == "ip":
			sb.WriteString("incumbent cost (i) vs node:\n")
			plot(&sb, xs, [][]float64{ys}, []byte{'i'})
		case len(xs) > 1:
			sb.WriteString("completed jobs (j) vs simulated time:\n")
			plot(&sb, xs, [][]float64{ys}, []byte{'j'})
		default:
			sb.WriteString("trace has too few events to chart\n")
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// plot renders one or more series sharing an x axis onto a
// plotWidth×plotHeight character grid. Overlapping points from
// different series render '+'.
func plot(sb *strings.Builder, xs []float64, series [][]float64, marks []byte) {
	xMin, xMax := xs[0], xs[0]
	for _, x := range xs {
		xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
	}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, ys := range series {
		for _, y := range ys {
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, plotHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotWidth))
	}
	for si, ys := range series {
		for i, x := range xs {
			col := int((x - xMin) / (xMax - xMin) * float64(plotWidth-1))
			row := plotHeight - 1 - int((ys[i]-yMin)/(yMax-yMin)*float64(plotHeight-1))
			if grid[row][col] != ' ' && grid[row][col] != marks[si] {
				grid[row][col] = '+'
			} else {
				grid[row][col] = marks[si]
			}
		}
	}
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", yMax)
		case plotHeight - 1:
			label = fmt.Sprintf("%.4g", yMin)
		}
		fmt.Fprintf(sb, "  %10s |%s|\n", label, string(line))
	}
	fmt.Fprintf(sb, "  %10s  %-10.4g%*.4g\n", "", xMin, plotWidth-10, xMax)
}
