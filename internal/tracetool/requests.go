package tracetool

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cosched/internal/telemetry"
)

// RequestEvents collects the serving layer's request-lifecycle events
// from a split trace stream, ordered by emission time. A served request
// carries the solve_id of the run that answered it, so Split files it
// into that solve's trace; a rejected request ran no solve and lands in
// the ambient (id 0) trace — this walks both.
func RequestEvents(traces []*Trace) []telemetry.Event {
	var out []telemetry.Event
	for _, tr := range traces {
		for _, ev := range tr.Events {
			if ev.Ev == "request" {
				out = append(out, ev)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TMS < out[j].TMS })
	return out
}

// WriteRequests renders a captured trace's request events as the same
// table /debug/requests serves live: one row per request with its phase
// breakdown (queue/solve/encode/total), cache outcome, and the solve_id
// to drill into with `coschedtrace timeline -solve <id>`. Requests
// slower than slowMS (when > 0) are marked with a trailing `*`.
func WriteRequests(w io.Writer, traces []*Trace, slowMS float64) error {
	events := RequestEvents(traces)
	if len(events) == 0 {
		_, err := io.WriteString(w, "no request events: the trace was not captured from a serving daemon (or no requests arrived)\n")
		return err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== requests: %d ===\n", len(events))
	fmt.Fprintf(&sb, "%10s  %-24s  %-15s  %3s  %9s  %9s  %9s  %9s  %-6s  %-3s  %8s  %s\n",
		"t_ms", "req_id", "route", "st", "queue_ms", "solve_ms", "enc_ms", "total_ms",
		"cache", "deg", "solve_id", "abort")
	for _, ev := range events {
		deg := ""
		if ev.Degraded {
			deg = "yes"
		}
		mark := ""
		if slowMS > 0 && ev.TotalMS >= slowMS {
			mark = " *"
		}
		fmt.Fprintf(&sb, "%10.1f  %-24s  %-15s  %3d  %9.2f  %9.2f  %9.2f  %9.2f  %-6s  %-3s  %8d  %s%s\n",
			ev.TMS, ev.ReqID, ev.Route, ev.Status,
			ev.QueueMS, ev.SolveMS, ev.EncodeMS, ev.TotalMS,
			ev.Cache, deg, ev.SolveID, ev.Reason, mark)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
