// Package tracetool analyses the JSONL event traces the solvers emit
// (internal/telemetry's Event schema): it splits multi-solve streams by
// solve id, replays each solve against the search invariants the paper's
// algorithms guarantee, renders per-solve summaries and ASCII timelines,
// and diffs two traces counter by counter. cmd/coschedtrace is the CLI
// front end.
package tracetool

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"cosched/internal/telemetry"
)

// Trace is one solve's event stream, in emission order.
type Trace struct {
	// ID is the solve id every event carries (zero for traces written
	// by producers predating the solve_id field).
	ID uint64
	// Events are the solve's events in stream order.
	Events []telemetry.Event
	// Truncated reports an incomplete view of the solve: the stream
	// ended mid-line (crashed or killed producer) or started mid-solve
	// (a flight-recorder tail window). Stats- and solution-dependent
	// invariants are skipped for truncated traces.
	Truncated bool
}

// Split groups a mixed event stream into per-solve traces, in order of
// each solve's first appearance. Events without a solve id (legacy
// traces) form one trace with ID 0. A solve with no solve_start whose
// first pop index is past 1 is a tail window (a flight-recorder dump or
// /debug/trace snapshot whose head rotated out of the ring) and is
// marked Truncated.
func Split(events []telemetry.Event) []*Trace {
	var out []*Trace
	byID := map[uint64]*Trace{}
	for _, ev := range events {
		tr := byID[ev.SolveID]
		if tr == nil {
			tr = &Trace{ID: ev.SolveID}
			byID[ev.SolveID] = tr
			out = append(out, tr)
		}
		tr.Events = append(tr.Events, ev)
	}
	for _, tr := range out {
		if tr.start() == nil && tr.headTruncated() {
			tr.Truncated = true
		}
	}
	return out
}

// headTruncated reports that the stream clearly started mid-solve: the
// first pop-carrying event is past pop 1. A corrupt trace that merely
// lost its solve_start line still begins at pop 1, so it keeps failing
// the missing-solve-start invariant.
func (t *Trace) headTruncated() bool {
	for i := range t.Events {
		if p := t.Events[i].Pop; p > 0 {
			return p > 1
		}
	}
	return false
}

// Load reads a JSONL trace stream and splits it into solves. A torn
// trailing line (producer killed mid-write) is tolerated: the parsed
// prefix is returned with every solve marked Truncated. Any other parse
// failure is an error.
func Load(r io.Reader) ([]*Trace, error) {
	events, err := telemetry.ReadEvents(r)
	truncated := false
	if err != nil {
		if _, ok := telemetry.AsTraceError(err); !ok || len(events) == 0 {
			return nil, err
		}
		truncated = true
	}
	traces := Split(events)
	if truncated {
		for _, tr := range traces {
			tr.Truncated = true
		}
	}
	return traces, nil
}

// start returns the solve_start event, or nil.
func (t *Trace) start() *telemetry.Event {
	for i := range t.Events {
		if t.Events[i].Ev == "solve_start" {
			return &t.Events[i]
		}
	}
	return nil
}

// stats returns the final stats event, or nil.
func (t *Trace) stats() *telemetry.Event {
	for i := len(t.Events) - 1; i >= 0; i-- {
		if t.Events[i].Ev == "stats" {
			return &t.Events[i]
		}
	}
	return nil
}

// solution returns the solution event, or nil.
func (t *Trace) solution() *telemetry.Event {
	for i := len(t.Events) - 1; i >= 0; i-- {
		if t.Events[i].Ev == "solution" {
			return &t.Events[i]
		}
	}
	return nil
}

// Method returns the solve_start method label ("OA*", "HA*", "beam",
// "ip:<config>", "online:<policy>"), or "" for headless traces.
func (t *Trace) Method() string {
	if st := t.start(); st != nil {
		return st.Method
	}
	return ""
}

// kind classifies the producer family from the method label.
func (t *Trace) kind() string {
	m := t.Method()
	switch {
	case strings.HasPrefix(m, "ip:"):
		return "ip"
	case strings.HasPrefix(m, "online:"):
		return "online"
	default:
		return "search"
	}
}

// phases extracts the completed span breakdown (name, duration ms) in
// completion order from span_end events.
func (t *Trace) phases() []phase {
	var out []phase
	for _, ev := range t.Events {
		if ev.Ev == "span_end" {
			out = append(out, phase{ev.Span, ev.DurMS})
		}
	}
	return out
}

type phase struct {
	name  string
	durMS float64
}

// counters collects the named per-solve counters used by summaries and
// diffs: the stats-event accounting plus event-stream tallies.
func (t *Trace) counters() ([]string, map[string]float64) {
	c := map[string]float64{}
	order := []string{}
	add := func(name string, v float64) {
		if _, dup := c[name]; !dup {
			order = append(order, name)
		}
		c[name] += v
	}
	if st := t.stats(); st != nil {
		for _, f := range []struct {
			name string
			v    int64
		}{
			{"visited", st.Visited}, {"expanded", st.Expanded},
			{"generated", st.Generated}, {"dismissed_stale", st.DismissedStale},
			{"dismissed_worse", st.DismissedWorse}, {"pruned", st.Pruned},
			{"beam_trimmed", st.BeamTrimmed}, {"in_frontier", st.InFrontier},
			{"condensed", st.Condensed}, {"bb_nodes", st.Nodes},
			{"lp_iters", st.LPIters},
		} {
			if f.v != 0 {
				add(f.name, float64(f.v))
			}
		}
	}
	var events, incumbents, placements float64
	for _, ev := range t.Events {
		events++
		switch ev.Ev {
		case "incumbent":
			incumbents++
		case "place":
			placements++
		}
	}
	add("events", events)
	if incumbents > 0 {
		add("incumbents", incumbents)
	}
	if placements > 0 {
		add("placements", placements)
	}
	if sol := t.solution(); sol != nil {
		add("cost", sol.Cost)
	}
	return order, c
}

// depthProfile tallies expansions per depth from the expand events.
func (t *Trace) depthProfile() ([]int, []int64) {
	byDepth := map[int]int64{}
	for _, ev := range t.Events {
		if ev.Ev == "expand" {
			byDepth[ev.Depth]++
		}
	}
	depths := make([]int, 0, len(byDepth))
	for d := range byDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	counts := make([]int64, len(depths))
	for i, d := range depths {
		counts[i] = byDepth[d]
	}
	return depths, counts
}

// popsPerSec estimates the pop rate from the stats-event visited count
// over the trace's t_ms window; 0 when not derivable.
func (t *Trace) popsPerSec() float64 {
	st := t.stats()
	if st == nil || st.Visited == 0 || len(t.Events) < 2 {
		return 0
	}
	span := t.Events[len(t.Events)-1].TMS - t.Events[0].TMS
	if span <= 0 {
		return 0
	}
	return float64(st.Visited) / (span / 1000)
}

// label renders the trace's identity for report headers.
func (t *Trace) label() string {
	m := t.Method()
	if m == "" {
		m = "unknown"
	}
	if st := t.start(); st != nil && st.N > 0 {
		return fmt.Sprintf("solve %d: %s n=%d", t.ID, m, st.N)
	}
	return fmt.Sprintf("solve %d: %s", t.ID, m)
}

// fmtCount renders a counter value: integers plainly, costs with
// precision.
func fmtCount(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.6f", v)
}
