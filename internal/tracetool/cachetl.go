package tracetool

import (
	"fmt"
	"io"
	"strings"

	"cosched/internal/telemetry"
)

// CacheEvents collects the serving layer's solution-cache events from a
// split trace stream, in emission order. Cache events belong to no
// solve (the cache tier outlives any one request), so Split files them
// under solve id 0 alongside any legacy events; this pulls them back
// out for the cache timeline.
func CacheEvents(traces []*Trace) []telemetry.Event {
	var out []telemetry.Event
	for _, tr := range traces {
		for _, ev := range tr.Events {
			if ev.Ev == "cache" {
				out = append(out, ev)
			}
		}
	}
	return out
}

// WriteCache renders the daemon's solution-cache history as an ASCII
// timeline: one line per cache event with its offset from server start,
// the operation (replay at boot, store on a cacheable miss, evict when
// a bound pushed entries out), the record count, and the cache's
// resident bytes after the event as a bar scaled to the stream's peak.
// A closing line totals the replayed/stored/evicted records. A stream
// with no cache events renders a note saying so — the daemon ran
// cacheless, or nothing was ever stored.
func WriteCache(w io.Writer, traces []*Trace) error {
	events := CacheEvents(traces)
	if len(events) == 0 {
		_, err := io.WriteString(w, "no cache events: the solution cache never changed shape (caching disabled, or no cacheable solves)\n")
		return err
	}
	var peak int64
	for _, ev := range events {
		if ev.Bytes > peak {
			peak = ev.Bytes
		}
	}
	var sb strings.Builder
	span := (events[len(events)-1].TMS - events[0].TMS) / 1000
	fmt.Fprintf(&sb, "=== cache timeline: %d events over %.1fs, peak %d bytes ===\n",
		len(events), span, peak)
	const barWidth = 24
	var replayed, stored, evicted int
	for _, ev := range events {
		switch ev.Reason {
		case "replay":
			replayed += ev.N
		case "store":
			stored += ev.N
		case "evict":
			evicted += ev.N
		}
		bar := 0
		if peak > 0 {
			bar = int(ev.Bytes * barWidth / peak)
		}
		fmt.Fprintf(&sb, "  t=+%8.2fs  %-6s n=%-5d %8dB %-*s\n",
			ev.TMS/1000, ev.Reason, ev.N, ev.Bytes, barWidth, strings.Repeat("#", bar))
	}
	fmt.Fprintf(&sb, "  total: %d replayed, %d stored, %d evicted\n", replayed, stored, evicted)
	_, err := io.WriteString(w, sb.String())
	return err
}
