package tracetool

import (
	"bytes"
	"context"
	"testing"
	"time"

	"cosched/internal/astar"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/workload"
)

// degradedTrace runs a solve under an already-expired context so the
// anytime path fires: the trace must carry one abort event and a
// solution event echoing its reason.
func degradedTrace(t *testing.T) []byte {
	t.Helper()
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(12, &m, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(degradation.ModePC), in.Patterns)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var buf bytes.Buffer
	s, err := astar.NewSolver(g, astar.Options{
		H: astar.HPerProc, Condense: true, UseIncumbent: true,
		Ctx: ctx, Tracer: astar.NewJSONLTracer(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded {
		t.Fatal("expired-context solve not degraded; fixture broken")
	}
	return buf.Bytes()
}

func TestCheckDegradedTracePasses(t *testing.T) {
	raw := degradedTrace(t)
	tr := loadOne(t, raw)
	if vs := Check(tr); len(vs) > 0 {
		t.Errorf("well-formed degraded trace failed check: %v", vs)
	}
	var aborts int
	for _, ev := range tr.Events {
		if ev.Ev == "abort" {
			aborts++
			if ev.Reason != "deadline" {
				t.Errorf("abort reason %q; want deadline", ev.Reason)
			}
		}
	}
	if aborts != 1 {
		t.Errorf("degraded trace carries %d abort events; want 1", aborts)
	}
	if sol := tr.solution(); sol == nil || sol.Reason != "deadline" {
		t.Errorf("solution does not echo the abort reason: %+v", sol)
	}
}

func TestCheckCorruptedAbort(t *testing.T) {
	raw := degradedTrace(t)

	// mutate exactly one line of the trace and re-check
	mutate := func(match, old, new string) []Violation {
		t.Helper()
		lines := bytes.Split(raw, []byte("\n"))
		out := make([][]byte, len(lines))
		hit := false
		for i, l := range lines {
			if !hit && bytes.Contains(l, []byte(match)) {
				l = bytes.Replace(l, []byte(old), []byte(new), 1)
				hit = true
			}
			out[i] = l
		}
		if !hit {
			t.Fatalf("fixture has no line matching %q", match)
		}
		return Check(loadOne(t, bytes.Join(out, []byte("\n"))))
	}

	// Unknown reason on the abort event: whitelist plus the echo rule.
	if vs := mutate(`"ev":"abort"`, `"reason":"deadline"`, `"reason":"bogus"`); !hasInvariant(vs, "abort-reason") {
		t.Errorf("unknown abort reason not caught: %v", vs)
	}
	// Solution claiming a different reason than the abort event.
	if vs := mutate(`"ev":"solution"`, `"reason":"deadline"`, `"reason":"memory"`); !hasInvariant(vs, "abort-reason") {
		t.Errorf("mismatched solution reason not caught: %v", vs)
	}

	// A second abort event: at most one allowed.
	var abortLine []byte
	for _, l := range bytes.Split(raw, []byte("\n")) {
		if bytes.Contains(l, []byte(`"ev":"abort"`)) {
			abortLine = l
			break
		}
	}
	if abortLine == nil {
		t.Fatal("fixture has no abort event")
	}
	doubled := append(append([]byte{}, raw...), append(abortLine, '\n')...)
	if vs := Check(loadOne(t, doubled)); !hasInvariant(vs, "abort-reason") {
		t.Errorf("duplicate abort event not caught: %v", vs)
	}

	// Dropping the abort event while the solution still claims one.
	var pruned [][]byte
	for _, l := range bytes.Split(raw, []byte("\n")) {
		if bytes.Contains(l, []byte(`"ev":"abort"`)) {
			continue
		}
		pruned = append(pruned, l)
	}
	if vs := Check(loadOne(t, bytes.Join(pruned, []byte("\n")))); !hasInvariant(vs, "abort-reason") {
		t.Errorf("orphan solution reason not caught: %v", vs)
	}
}
