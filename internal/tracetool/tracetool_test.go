package tracetool

import (
	"bytes"
	"strings"
	"testing"

	"cosched/internal/astar"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/ip"
	"cosched/internal/job"
	"cosched/internal/online"
	"cosched/internal/telemetry"
	"cosched/internal/workload"
)

// searchTrace runs a small solve with the JSONL tracer attached and
// returns the raw trace bytes.
func searchTrace(t *testing.T, n int, opts astar.Options) []byte {
	t.Helper()
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(n, &m, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(in.Cost(degradation.ModePC), in.Patterns)
	var buf bytes.Buffer
	opts.Tracer = astar.NewJSONLTracer(&buf)
	s, err := astar.NewSolver(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func loadOne(t *testing.T, raw []byte) *Trace {
	t.Helper()
	traces, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	return traces[0]
}

func TestCheckCleanSearchTraces(t *testing.T) {
	for name, opts := range map[string]astar.Options{
		"OA*":  {H: astar.HPerProc, Condense: true, UseIncumbent: true},
		"HA*":  {H: astar.HPerProc, KPerLevel: 3, Condense: true, UseIncumbent: true},
		"beam": {H: astar.HPerProcAvg, KPerLevel: 3, BeamWidth: 8},
	} {
		tr := loadOne(t, searchTrace(t, 12, opts))
		if tr.Method() != name {
			t.Errorf("%s: method = %q", name, tr.Method())
		}
		if vs := Check(tr); len(vs) > 0 {
			t.Errorf("%s: clean trace failed check: %v", name, vs)
		}
	}
}

func TestCheckCleanIPTrace(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(8, &m, 3)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ip.BuildModel(in.Cost(degradation.ModePC))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := ip.ConfigA
	cfg.Events = telemetry.NewEventWriter(&buf)
	if _, err := ip.Solve(model, cfg); err != nil {
		t.Fatal(err)
	}
	tr := loadOne(t, buf.Bytes())
	if vs := Check(tr); len(vs) > 0 {
		t.Errorf("clean IP trace failed check: %v", vs)
	}
}

func TestCheckCleanOnlineTrace(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(8, &m, 3)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([]online.Arrival, 8)
	for i := range arrivals {
		arrivals[i] = online.Arrival{Job: job.JobID(i), Time: float64(i)}
	}
	var buf bytes.Buffer
	_, err = online.SimulateTraced(in.Cost(degradation.ModePC), in.SoloTime, 2,
		arrivals, online.FirstFit{}, online.Observer{Events: telemetry.NewEventWriter(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	tr := loadOne(t, buf.Bytes())
	if vs := Check(tr); len(vs) > 0 {
		t.Errorf("clean online trace failed check: %v", vs)
	}
}

// TestCheckCorruptedDismiss is the detection guarantee: tampering with a
// dismiss event must fail check with the named invariant.
func TestCheckCorruptedDismiss(t *testing.T) {
	raw := searchTrace(t, 12, astar.Options{H: astar.HPerProc, Condense: true, UseIncumbent: true})

	// Mutating one dismissal's reason trips dismiss-reason (the bogus
	// label) and dismiss-count (the per-reason tallies no longer match
	// the stats event).
	mangled := bytes.Replace(raw, []byte(`"reason":"worse"`), []byte(`"reason":"bogus"`), 1)
	if bytes.Equal(mangled, raw) {
		t.Fatal("fixture has no worse-dismissal to corrupt")
	}
	vs := Check(loadOne(t, mangled))
	if !hasInvariant(vs, "dismiss-reason") || !hasInvariant(vs, "dismiss-count") {
		t.Errorf("corrupted dismiss reason not caught: %v", vs)
	}

	// Deleting a dismiss line entirely trips dismiss-count alone.
	lines := bytes.Split(raw, []byte("\n"))
	var pruned [][]byte
	dropped := false
	for _, l := range lines {
		if !dropped && bytes.Contains(l, []byte(`"ev":"dismiss"`)) {
			dropped = true
			continue
		}
		pruned = append(pruned, l)
	}
	if !dropped {
		t.Fatal("fixture has no dismiss event to drop")
	}
	vs = Check(loadOne(t, bytes.Join(pruned, []byte("\n"))))
	if !hasInvariant(vs, "dismiss-count") {
		t.Errorf("dropped dismiss event not caught: %v", vs)
	}
}

func TestCheckCorruptedStatsAndSolution(t *testing.T) {
	raw := searchTrace(t, 12, astar.Options{H: astar.HPerProc, Condense: true, UseIncumbent: true})

	// Inflating the generated counter breaks the admission identity.
	mangled := bytes.Replace(raw, []byte(`"generated":`), []byte(`"generated":9`), 1)
	vs := Check(loadOne(t, mangled))
	if !hasInvariant(vs, "admission-identity") {
		t.Errorf("corrupted stats not caught: %v", vs)
	}

	// A schedule losing process 1 breaks the partition.
	mangled = bytes.Replace(raw, []byte(`"groups":[[1,`), []byte(`"groups":[[2,`), 1)
	if bytes.Equal(mangled, raw) {
		t.Fatal("fixture solution does not open with process 1")
	}
	vs = Check(loadOne(t, mangled))
	if !hasInvariant(vs, "solution-groups") {
		t.Errorf("corrupted solution groups not caught: %v", vs)
	}
}

// TestCheckParallelTraceRelaxesOrder pins the parallel-trace contract:
// concurrent expansion workers interleave their pops, so the f-monotone
// rule applies only when solve_start records a single worker, while the
// total-based rules keep holding either way.
func TestCheckParallelTraceRelaxesOrder(t *testing.T) {
	// A real parallel solve must record its worker count and check clean.
	par := loadOne(t, searchTrace(t, 12, astar.Options{
		H: astar.HPerProc, Condense: true, UseIncumbent: true, Parallelism: 4,
	}))
	if st := par.start(); st == nil || st.Parallelism != 4 {
		t.Fatalf("parallel solve_start did not record 4 workers: %+v", st)
	}
	if vs := Check(par); len(vs) > 0 {
		t.Errorf("clean parallel trace failed check: %v", vs)
	}

	// Force an f-order regression in a sequential trace: inflating one
	// non-goal expansion's g makes the following pop's f strictly lower.
	seq := loadOne(t, searchTrace(t, 12, astar.Options{
		H: astar.HPerProc, Condense: true, UseIncumbent: true,
	}))
	mangled := false
	for i := range seq.Events {
		if ev := &seq.Events[i]; ev.Ev == "expand" && ev.Leader != 0 {
			ev.G += 1000
			mangled = true
			break
		}
	}
	if !mangled {
		t.Fatal("fixture has no non-goal expand event to corrupt")
	}
	if vs := Check(seq); !hasInvariant(vs, "f-monotone") {
		t.Errorf("sequential out-of-order pops not caught: %v", vs)
	}
	// The identical stream labelled as a 4-worker solve tolerates the
	// interleaving — order rules are relaxed, not the totals.
	seq.start().Parallelism = 4
	if vs := Check(seq); hasInvariant(vs, "f-monotone") {
		t.Errorf("parallel-labelled trace still flagged f-monotone: %v", vs)
	}
}

func hasInvariant(vs []Violation, name string) bool {
	for _, v := range vs {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

func TestLoadTruncatedTrace(t *testing.T) {
	raw := searchTrace(t, 8, astar.Options{H: astar.HPerProc, Condense: true, UseIncumbent: true})
	// Cut the trace mid-way through its final line: stats and solution
	// are gone and the last line is torn.
	cut := raw[:len(raw)*2/3]
	traces, err := Load(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || !traces[0].Truncated {
		t.Fatalf("truncated stream not flagged: %d traces", len(traces))
	}
	if vs := Check(traces[0]); len(vs) > 0 {
		t.Errorf("truncated trace reported violations: %v", vs)
	}
	// Garbage that is not JSON at all still errors.
	if _, err := Load(strings.NewReader("not json\n")); err == nil {
		t.Error("pure garbage accepted")
	}
}

func TestRingSnapshotIsTruncatedNotBroken(t *testing.T) {
	raw := searchTrace(t, 8, astar.Options{H: astar.HPerProc, UseIncumbent: true})
	events, err := telemetry.ReadEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// A flight-recorder dump mid-solve: the head (solve_start and the
	// early pops) rotated out of the ring.
	tail := events[len(events)/2:]
	for _, ev := range tail {
		if ev.Ev == "solve_start" {
			t.Fatal("tail window still holds solve_start; slice later")
		}
	}
	traces := Split(tail)
	if len(traces) != 1 || !traces[0].Truncated {
		t.Fatalf("tail window not marked truncated: %+v", traces)
	}
	if vs := Check(traces[0]); len(vs) > 0 {
		t.Errorf("tail window reported violations: %v", vs)
	}
	// But a trace that merely lost its solve_start line (starts at pop 1)
	// is broken, not truncated.
	headless := Split(events[1:])
	if len(headless) != 1 || headless[0].Truncated {
		t.Fatalf("headless full trace misclassified as truncated")
	}
	if !hasInvariant(Check(headless[0]), "missing-solve-start") {
		t.Error("headless full trace did not fail missing-solve-start")
	}
}

func TestSplitSeparatesSolves(t *testing.T) {
	a := searchTrace(t, 8, astar.Options{H: astar.HPerProc, UseIncumbent: true})
	b := searchTrace(t, 8, astar.Options{H: astar.HPerProc, KPerLevel: 2, UseIncumbent: true})
	traces, err := Load(bytes.NewReader(append(append([]byte{}, a...), b...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	if traces[0].ID == traces[1].ID {
		t.Error("solve ids collide")
	}
	if traces[0].Method() != "OA*" || traces[1].Method() != "HA*" {
		t.Errorf("methods = %q, %q", traces[0].Method(), traces[1].Method())
	}
}

func TestSummaryAndTimelineRender(t *testing.T) {
	tr := loadOne(t, searchTrace(t, 12, astar.Options{H: astar.HPerProc, Condense: true, UseIncumbent: true}))
	var sum bytes.Buffer
	if err := WriteSummary(&sum, tr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"method OA*", "visited", "generated", "expansions by depth", "cost"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}
	var tl bytes.Buffer
	if err := WriteTimeline(&tl, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.String(), "popped g (g) and h estimate (h) vs pop") {
		t.Errorf("timeline missing g/h chart:\n%s", tl.String())
	}
}

func TestDiffDetectsCostMismatch(t *testing.T) {
	oa := loadOne(t, searchTrace(t, 12, astar.Options{H: astar.HPerProc, Condense: true, UseIncumbent: true}))
	same := loadOne(t, searchTrace(t, 12, astar.Options{H: astar.HPerProc, Condense: true, UseIncumbent: true}))
	rep := Diff(oa, same)
	if rep.CostMismatch {
		t.Error("identical solves flagged as cost mismatch")
	}
	ha := loadOne(t, searchTrace(t, 12, astar.Options{H: astar.HPerProcAvg, HWeight: 1.5, KPerLevel: 2, BeamWidth: 4}))
	rep = Diff(oa, ha)
	if sa, sb := oa.solution(), ha.solution(); sa.Cost != sb.Cost && !rep.CostMismatch {
		t.Error("differing costs not flagged")
	}
	var buf bytes.Buffer
	if err := WriteDiff(&buf, oa, ha, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "counter") || !strings.Contains(buf.String(), "cost") {
		t.Errorf("diff table malformed:\n%s", buf.String())
	}
}
