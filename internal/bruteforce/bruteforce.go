// Package bruteforce enumerates every partition of a batch into
// u-cardinality machine groups and returns the Eq. 13 optimum. It is the
// verification oracle for OA*, HA*, O-SVP, PG and the IP method on small
// instances (feasible up to roughly 16 processes on quad-core machines:
// C(15,3)·C(11,3)·C(7,3) ≈ 2.6M partitions).
package bruteforce

import (
	"context"
	"fmt"
	"math"

	"cosched/internal/abort"
	"cosched/internal/degradation"
	"cosched/internal/job"
)

// Result is the provably optimal schedule — or, when a SolveContext was
// cancelled mid-enumeration, the best partition seen so far, flagged
// Degraded.
type Result struct {
	Groups [][]job.ProcID
	Cost   float64
	// Partitions counts the complete partitions evaluated (after
	// branch-and-bound pruning).
	Partitions int64
	// Degraded reports that the enumeration stopped early (cancelled or
	// expired context); Aborted carries the reason. The Groups are then
	// the best partition found before the stop — feasible, not proven
	// optimal.
	Degraded bool
	Aborted  abort.Reason
}

// MaxProcs guards against accidentally launching an astronomically large
// enumeration.
const MaxProcs = 24

// abortCheckEvery is the tryNode interval between context polls: the
// poll is two orders of magnitude cheaper than a node evaluation, but
// keeping it off the per-node path costs nothing. Power of two (masked).
const abortCheckEvery = 512

type searcher struct {
	cost    *degradation.Cost
	batch   *job.Batch
	n, u    int
	used    []bool
	procPar []int // dense parallel-job index per process, -1 for serial
	jobMax  []float64
	dist    float64
	cur     [][]job.ProcID
	best    float64
	bestG   [][]job.ProcID
	parts   int64

	// Cancellation state: done is polled every abortCheckEvery tryNode
	// calls; once aborted is set the recursion unwinds without further
	// node evaluations.
	ctx     context.Context
	done    <-chan struct{}
	calls   int64
	aborted abort.Reason
}

// Solve exhaustively finds the minimum-objective partition.
func Solve(c *degradation.Cost) (*Result, error) {
	return SolveContext(context.Background(), c)
}

// SolveContext is Solve with cancellation: a cancelled or expired
// context stops the enumeration promptly and returns the best partition
// seen so far as a degraded Result (falling back to the trivial
// sequential partition when the stop landed before any complete one).
func SolveContext(ctx context.Context, c *degradation.Cost) (*Result, error) {
	b := c.Batch
	n := b.NumProcs()
	if n > MaxProcs {
		return nil, fmt.Errorf("bruteforce: %d processes exceed the enumeration guard (%d)", n, MaxProcs)
	}
	s := &searcher{
		cost:  c,
		batch: b,
		n:     n,
		u:     b.Cores,
		used:  make([]bool, n+1),
		best:  math.Inf(1),
	}
	if ctx != nil {
		s.ctx = ctx
		s.done = ctx.Done()
		// An already-done context aborts before the first node.
		select {
		case <-s.done:
			s.aborted = abort.FromContext(ctx)
		default:
		}
	}
	s.procPar = make([]int, n)
	for i := range s.procPar {
		s.procPar[i] = -1
	}
	par := b.ParallelJobs()
	for idx, jid := range par {
		for _, p := range b.Jobs[jid].Procs {
			s.procPar[int(p)-1] = idx
		}
	}
	s.jobMax = make([]float64, len(par))
	if s.aborted == abort.None {
		s.recurse()
	}
	if math.IsInf(s.best, 1) {
		if s.aborted != abort.None {
			groups := sequentialGroups(b)
			return &Result{
				Groups: groups, Cost: c.PartitionCost(groups),
				Partitions: s.parts, Degraded: true, Aborted: s.aborted,
			}, nil
		}
		return nil, fmt.Errorf("bruteforce: no feasible partition")
	}
	res := &Result{Groups: s.bestG, Cost: s.best, Partitions: s.parts}
	if s.aborted != abort.None {
		res.Degraded = true
		res.Aborted = s.aborted
	}
	return res, nil
}

// sequentialGroups is the trivial u-chunk partition of processes 1..n,
// the fallback an aborted enumeration can always return.
func sequentialGroups(b *job.Batch) [][]job.ProcID {
	n, u := b.NumProcs(), b.Cores
	groups := make([][]job.ProcID, 0, n/u)
	for p := 1; p <= n; p += u {
		g := make([]job.ProcID, 0, u)
		for q := p; q < p+u && q <= n; q++ {
			g = append(g, job.ProcID(q))
		}
		groups = append(groups, g)
	}
	return groups
}

func (s *searcher) recurse() {
	if s.aborted != abort.None {
		return
	}
	leader := 0
	for p := 1; p <= s.n; p++ {
		if !s.used[p] {
			leader = p
			break
		}
	}
	if leader == 0 {
		s.parts++
		if s.dist < s.best {
			s.best = s.dist
			s.bestG = make([][]job.ProcID, len(s.cur))
			for i, g := range s.cur {
				s.bestG[i] = append([]job.ProcID(nil), g...)
			}
		}
		return
	}
	avail := make([]int, 0, s.n-leader)
	for p := leader + 1; p <= s.n; p++ {
		if !s.used[p] {
			avail = append(avail, p)
		}
	}
	r := s.u - 1
	if len(avail) < r {
		return
	}
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	node := make([]job.ProcID, s.u)
	node[0] = job.ProcID(leader)
	for {
		for i, ai := range idx {
			node[i+1] = job.ProcID(avail[ai])
		}
		s.tryNode(node)
		i := r - 1
		for i >= 0 && idx[i] == len(avail)-r+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < r; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// tryNode commits one machine group, recurses and undoes the commit.
// Increments are non-negative, so sub-paths already at or above the
// incumbent are pruned.
func (s *searcher) tryNode(node []job.ProcID) {
	if s.aborted != abort.None {
		return
	}
	s.calls++
	if s.done != nil && s.calls&(abortCheckEvery-1) == 0 {
		select {
		case <-s.done:
			s.aborted = abort.FromContext(s.ctx)
			return
		default:
		}
	}
	type undo struct {
		pi  int
		old float64
	}
	var undos []undo
	savedDist := s.dist
	var others [16]job.ProcID
	for i, p := range node {
		s.used[p] = true
		co := others[:0]
		co = append(co, node[:i]...)
		co = append(co, node[i+1:]...)
		d := s.cost.ProcCost(p, co)
		pi := s.procPar[int(p)-1]
		if s.cost.Mode == degradation.ModeSE || pi < 0 {
			s.dist += d
			continue
		}
		if d > s.jobMax[pi] {
			undos = append(undos, undo{pi: pi, old: s.jobMax[pi]})
			s.dist += d - s.jobMax[pi]
			s.jobMax[pi] = d
		}
	}
	if s.dist < s.best {
		s.cur = append(s.cur, append([]job.ProcID(nil), node...))
		s.recurse()
		s.cur = s.cur[:len(s.cur)-1]
	}
	for i := len(undos) - 1; i >= 0; i-- {
		s.jobMax[undos[i].pi] = undos[i].old
	}
	s.dist = savedDist
	for _, p := range node {
		s.used[p] = false
	}
}
