// Package bruteforce enumerates every partition of a batch into
// u-cardinality machine groups and returns the Eq. 13 optimum. It is the
// verification oracle for OA*, HA*, O-SVP, PG and the IP method on small
// instances (feasible up to roughly 16 processes on quad-core machines:
// C(15,3)·C(11,3)·C(7,3) ≈ 2.6M partitions).
package bruteforce

import (
	"fmt"
	"math"

	"cosched/internal/degradation"
	"cosched/internal/job"
)

// Result is the provably optimal schedule.
type Result struct {
	Groups [][]job.ProcID
	Cost   float64
	// Partitions counts the complete partitions evaluated (after
	// branch-and-bound pruning).
	Partitions int64
}

// MaxProcs guards against accidentally launching an astronomically large
// enumeration.
const MaxProcs = 24

type searcher struct {
	cost    *degradation.Cost
	batch   *job.Batch
	n, u    int
	used    []bool
	procPar []int // dense parallel-job index per process, -1 for serial
	jobMax  []float64
	dist    float64
	cur     [][]job.ProcID
	best    float64
	bestG   [][]job.ProcID
	parts   int64
}

// Solve exhaustively finds the minimum-objective partition.
func Solve(c *degradation.Cost) (*Result, error) {
	b := c.Batch
	n := b.NumProcs()
	if n > MaxProcs {
		return nil, fmt.Errorf("bruteforce: %d processes exceed the enumeration guard (%d)", n, MaxProcs)
	}
	s := &searcher{
		cost:  c,
		batch: b,
		n:     n,
		u:     b.Cores,
		used:  make([]bool, n+1),
		best:  math.Inf(1),
	}
	s.procPar = make([]int, n)
	for i := range s.procPar {
		s.procPar[i] = -1
	}
	par := b.ParallelJobs()
	for idx, jid := range par {
		for _, p := range b.Jobs[jid].Procs {
			s.procPar[int(p)-1] = idx
		}
	}
	s.jobMax = make([]float64, len(par))
	s.recurse()
	if math.IsInf(s.best, 1) {
		return nil, fmt.Errorf("bruteforce: no feasible partition")
	}
	return &Result{Groups: s.bestG, Cost: s.best, Partitions: s.parts}, nil
}

func (s *searcher) recurse() {
	leader := 0
	for p := 1; p <= s.n; p++ {
		if !s.used[p] {
			leader = p
			break
		}
	}
	if leader == 0 {
		s.parts++
		if s.dist < s.best {
			s.best = s.dist
			s.bestG = make([][]job.ProcID, len(s.cur))
			for i, g := range s.cur {
				s.bestG[i] = append([]job.ProcID(nil), g...)
			}
		}
		return
	}
	avail := make([]int, 0, s.n-leader)
	for p := leader + 1; p <= s.n; p++ {
		if !s.used[p] {
			avail = append(avail, p)
		}
	}
	r := s.u - 1
	if len(avail) < r {
		return
	}
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	node := make([]job.ProcID, s.u)
	node[0] = job.ProcID(leader)
	for {
		for i, ai := range idx {
			node[i+1] = job.ProcID(avail[ai])
		}
		s.tryNode(node)
		i := r - 1
		for i >= 0 && idx[i] == len(avail)-r+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < r; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// tryNode commits one machine group, recurses and undoes the commit.
// Increments are non-negative, so sub-paths already at or above the
// incumbent are pruned.
func (s *searcher) tryNode(node []job.ProcID) {
	type undo struct {
		pi  int
		old float64
	}
	var undos []undo
	savedDist := s.dist
	var others [16]job.ProcID
	for i, p := range node {
		s.used[p] = true
		co := others[:0]
		co = append(co, node[:i]...)
		co = append(co, node[i+1:]...)
		d := s.cost.ProcCost(p, co)
		pi := s.procPar[int(p)-1]
		if s.cost.Mode == degradation.ModeSE || pi < 0 {
			s.dist += d
			continue
		}
		if d > s.jobMax[pi] {
			undos = append(undos, undo{pi: pi, old: s.jobMax[pi]})
			s.dist += d - s.jobMax[pi]
			s.jobMax[pi] = d
		}
	}
	if s.dist < s.best {
		s.cur = append(s.cur, append([]job.ProcID(nil), node...))
		s.recurse()
		s.cur = s.cur[:len(s.cur)-1]
	}
	for i := len(undos) - 1; i >= 0; i-- {
		s.jobMax[undos[i].pi] = undos[i].old
	}
	s.dist = savedDist
	for _, p := range node {
		s.used[p] = false
	}
}
