package bruteforce

import (
	"context"
	"math"
	"testing"
	"time"

	"cosched/internal/abort"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/job"
	"cosched/internal/workload"
)

func TestSolveTinyKnownOptimum(t *testing.T) {
	// 4 processes on dual-core machines; interference chosen so the
	// optimum is {1,4},{2,3}: pairing the two aggressors together would
	// be costly for everyone else.
	bd := job.NewBuilder()
	for i := 0; i < 4; i++ {
		bd.AddSerial("s")
	}
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric pair costs: w(1,2)=10, w(3,4)=10, w(1,3)=4, w(2,4)=4,
	// w(1,4)=1, w(2,3)=1. Partitions: {12|34}=20, {13|24}=8, {14|23}=2.
	mtx := make([][]float64, 4)
	for i := range mtx {
		mtx[i] = make([]float64, 4)
	}
	setPair := func(a, bb int, w float64) {
		mtx[a-1][bb-1], mtx[bb-1][a-1] = w/2, w/2
	}
	setPair(1, 2, 10)
	setPair(3, 4, 10)
	setPair(1, 3, 4)
	setPair(2, 4, 4)
	setPair(1, 4, 1)
	setPair(2, 3, 1)
	o, err := degradation.NewPairwiseOracle(b, mtx, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := degradation.NewCost(b, o, degradation.ModePC)
	res, err := Solve(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-2) > 1e-12 {
		t.Errorf("optimum = %v; want 2", res.Cost)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %v", res.Groups)
	}
	if !(res.Groups[0][0] == 1 && res.Groups[0][1] == 4) {
		t.Errorf("optimal grouping = %v; want {1,4},{2,3}", res.Groups)
	}
	if res.Partitions <= 0 {
		t.Error("partition counter not populated")
	}
}

func TestSolveGuardsLargeInstances(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(28, &m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(in.Cost(degradation.ModePC)); err == nil {
		t.Error("brute force accepted 28 processes")
	}
}

func TestSolveValidatesAgainstAllModes(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticMixedInstance(8, 1, 4, &m, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []degradation.Mode{degradation.ModeSE, degradation.ModePE, degradation.ModePC} {
		c := in.Cost(mode)
		res, err := Solve(c)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if err := c.ValidatePartition(res.Groups); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
		if got := c.PartitionCost(res.Groups); math.Abs(got-res.Cost) > 1e-9 {
			t.Errorf("mode %v: reported %v != recomputed %v", mode, res.Cost, got)
		}
	}
}

func TestSEModeCostAtLeastPEMode(t *testing.T) {
	// Summing every parallel process (SE) can never undercut per-job
	// maxima (PE) on the same schedule; the optima satisfy PE <= SE.
	m := cache.QuadCore
	in, err := workload.SyntheticMixedInstance(8, 2, 3, &m, 4)
	if err != nil {
		t.Fatal(err)
	}
	se, err := Solve(in.Cost(degradation.ModeSE))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := Solve(in.Cost(degradation.ModePE))
	if err != nil {
		t.Fatal(err)
	}
	if pe.Cost > se.Cost+1e-9 {
		t.Errorf("PE optimum %v exceeds SE optimum %v", pe.Cost, se.Cost)
	}
}

// TestSolveContextAborts pins the anytime contract of the enumerator:
// an already-done context returns the trivial sequential partition as a
// degraded result, and a mid-flight cancel returns the best-so-far.
func TestSolveContextAborts(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticSerialInstance(16, &m, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveContext(ctx, c)
	if err != nil {
		t.Fatalf("cancelled enumeration errored instead of degrading: %v", err)
	}
	if !res.Degraded || res.Aborted != abort.Cancel {
		t.Errorf("result not flagged degraded/cancel: %+v", res)
	}
	if err := c.ValidatePartition(res.Groups); err != nil {
		t.Errorf("degraded partition invalid: %v", err)
	}

	exp, cancelExp := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelExp()
	res, err = SolveContext(exp, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Aborted != abort.Deadline {
		t.Errorf("result not flagged degraded/deadline: %+v", res)
	}

	full, err := SolveContext(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if full.Degraded || full.Aborted != abort.None {
		t.Errorf("unbounded enumeration flagged degraded: %+v", full)
	}
}
