package chaosproxy

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newBackend starts a plain HTTP backend that answers 200 with a body
// long enough for mid-body resets to truncate.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true,"pad":"` + strings.Repeat("x", 512) + `"}`)) //nolint:errcheck
	}))
	t.Cleanup(srv.Close)
	return srv
}

// freshClient builds a keep-alive-free client so every request opens a
// new proxy connection and therefore gets its own fault draw.
func freshClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func targetOf(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestPassThrough(t *testing.T) {
	backend := newBackend(t)
	p, err := Listen(Config{Target: targetOf(backend)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	resp, err := freshClient(5*time.Second).Post("http://"+p.Addr(), "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("pass-through request failed: %v", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("pass-through got status %d body %q err %v", resp.StatusCode, body, err)
	}
	if st := p.Stats(); st.Passed != 1 || st.Conns != 1 {
		t.Fatalf("stats = %+v; want one passed connection", st)
	}
}

func TestDropIsTransportError(t *testing.T) {
	backend := newBackend(t)
	p, err := Listen(Config{Target: targetOf(backend), DropProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	_, err = freshClient(2*time.Second).Post("http://"+p.Addr(), "application/json", strings.NewReader("{}"))
	if err == nil {
		t.Fatal("dropped connection produced a response; want a transport error")
	}
	if st := p.Stats(); st.Drops != 1 {
		t.Fatalf("stats = %+v; want one drop", st)
	}
}

func TestInjected503CarriesRetryAfter(t *testing.T) {
	backend := newBackend(t)
	p, err := Listen(Config{Target: targetOf(backend), Err503Prob: 1, RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	resp, err := freshClient(5*time.Second).Post("http://"+p.Addr(), "application/json", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatalf("injected 503 should still be a well-formed response: %v", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d; want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q; want \"2\"", ra)
	}
	if st := p.Stats(); st.Err503s != 1 {
		t.Fatalf("stats = %+v; want one injected 503", st)
	}
}

func TestResetMidBody(t *testing.T) {
	backend := newBackend(t)
	p, err := Listen(Config{Target: targetOf(backend), ResetProb: 1, ResetAfterBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	resp, err := freshClient(5*time.Second).Post("http://"+p.Addr(), "application/json", strings.NewReader("{}"))
	if err == nil {
		// The reset may land before the status line (transport error) or
		// after it (body read error); both are the mid-body failure shape.
		defer resp.Body.Close() //nolint:errcheck
		if _, rerr := io.ReadAll(resp.Body); rerr == nil {
			t.Fatal("mid-body reset delivered a complete response")
		}
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("stats = %+v; want one reset", st)
	}
}

func TestBlackholeHoldsUntilClientDeadline(t *testing.T) {
	backend := newBackend(t)
	p, err := Listen(Config{Target: targetOf(backend), BlackholeProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+p.Addr(), strings.NewReader("{}"))
	start := time.Now()
	_, err = freshClient(0).Do(req)
	if err == nil {
		t.Fatal("black-holed request produced a response")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("black-holed request failed after %v; want it held until the deadline", elapsed)
	}
	if st := p.Stats(); st.Blackholes != 1 {
		t.Fatalf("stats = %+v; want one blackhole", st)
	}
}

func TestDelayAddsLatency(t *testing.T) {
	backend := newBackend(t)
	p, err := Listen(Config{Target: targetOf(backend), Delay: 120 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	start := time.Now()
	resp, err := freshClient(5*time.Second).Post("http://"+p.Addr(), "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("delayed request round-tripped in %v; want >= ~120ms", elapsed)
	}
}

func TestSeededDrawsAreDeterministic(t *testing.T) {
	run := func() Counts {
		backend := newBackend(t)
		p, err := Listen(Config{Target: targetOf(backend), Seed: 7, DropProb: 0.3, Err503Prob: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close() //nolint:errcheck
		client := freshClient(2 * time.Second)
		for i := 0; i < 20; i++ { // sequential: arrival order is the draw order
			resp, err := client.Post("http://"+p.Addr(), "application/json", strings.NewReader("{}"))
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()              //nolint:errcheck
			}
		}
		return p.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault sequences: %+v vs %+v", a, b)
	}
	if a.Drops == 0 || a.Err503s == 0 || a.Passed == 0 {
		t.Fatalf("mixed config exercised no variety: %+v", a)
	}
}

func TestSetFaultsMidRun(t *testing.T) {
	backend := newBackend(t)
	p, err := Listen(Config{Target: targetOf(backend)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	client := freshClient(2 * time.Second)
	if resp, err := client.Post("http://"+p.Addr(), "application/json", strings.NewReader("{}")); err != nil {
		t.Fatalf("healthy phase failed: %v", err)
	} else {
		resp.Body.Close() //nolint:errcheck
	}
	p.SetFaults(Config{DropProb: 1})
	if _, err := client.Post("http://"+p.Addr(), "application/json", strings.NewReader("{}")); err == nil {
		t.Fatal("hostile phase still answered")
	}
	p.SetFaults(Config{})
	if resp, err := client.Post("http://"+p.Addr(), "application/json", strings.NewReader("{}")); err != nil {
		t.Fatalf("recovered phase failed: %v", err)
	} else {
		resp.Body.Close() //nolint:errcheck
	}
	st := p.Stats()
	if st.Passed != 2 || st.Drops != 1 {
		t.Fatalf("stats = %+v; want 2 passed, 1 dropped", st)
	}
}

func TestCloseUnblocksBlackholes(t *testing.T) {
	backend := newBackend(t)
	p, err := Listen(Config{Target: targetOf(backend), BlackholeProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// No client timeout: only the proxy's Close can free this.
		freshClient(0).Post("http://"+p.Addr(), "application/json", strings.NewReader("{}")) //nolint:errcheck
	}()
	// Wait for the connection to be swallowed, then close under it.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Blackholes == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }() //nolint:errcheck
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung behind a black-holed connection")
	}
	wg.Wait()
}
