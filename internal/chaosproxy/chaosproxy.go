// Package chaosproxy is a fault-injecting TCP proxy for exercising the
// fleet client and serving daemon under network failure: it sits
// between a client and one backend and, per accepted connection, draws
// a fault from a seeded distribution — drop the connection before any
// bytes move, add latency, black-hole the request (read it, never
// answer), relay the response but reset it mid-body, or answer an
// HTTP 503 with a Retry-After header without ever contacting the
// backend. Connections that draw no fault are piped through untouched.
//
// Faults are decided per TCP connection, not per HTTP request, so
// tests that want one fault draw per request must disable HTTP
// keep-alives on the client transport (each request then opens a fresh
// connection). The draw sequence is deterministic in Config.Seed: the
// same seed against the same connection arrival order injects the same
// faults, which keeps -race chaos tests reproducible.
package chaosproxy

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config describes the proxy's target and its fault mix. Probabilities
// are evaluated in order — Drop, Err503, Blackhole, Reset — on one
// uniform draw per connection, so their sum must stay <= 1; whatever
// probability mass remains passes the connection through cleanly
// (after Delay, which applies to every non-dropped connection).
type Config struct {
	// Target is the backend address ("host:port") faultless bytes are
	// piped to.
	Target string
	// Seed drives the per-connection fault draws (0 means 1).
	Seed int64
	// DropProb closes the accepted connection before any bytes move —
	// the client sees a reset/EOF, the transport-error shape of a
	// crashed backend.
	DropProb float64
	// Err503Prob answers "503 Service Unavailable" with a Retry-After
	// header at the HTTP layer without contacting the backend — the
	// shape of an overloaded or draining replica.
	Err503Prob float64
	// BlackholeProb reads and discards the client's bytes and never
	// answers — the shape of a wedged backend; the client's own timeout
	// or deadline is its only way out.
	BlackholeProb float64
	// ResetProb forwards the request but hard-closes (RST via
	// SO_LINGER 0) after relaying ResetAfterBytes of the response — a
	// mid-body failure, after the backend has already done the work.
	ResetProb float64
	// ResetAfterBytes is how much response to relay before the reset
	// (<= 0 means 64).
	ResetAfterBytes int
	// RetryAfter is the hint sent on injected 503s (<= 0 means 1s;
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// Delay is added once per non-dropped connection before any bytes
	// reach the backend; DelayJitter adds a uniform extra in
	// [0, DelayJitter).
	Delay       time.Duration
	DelayJitter time.Duration
}

// Counts reports what the proxy did, one count per accepted connection.
type Counts struct {
	// Conns is every accepted connection; the fault counts plus Passed
	// sum to it.
	Conns      int64
	Drops      int64
	Err503s    int64
	Blackholes int64
	Resets     int64
	Passed     int64
}

// Proxy is a running chaos proxy. Construct with Listen, stop with
// Close — Close also unblocks any black-holed connections.
type Proxy struct {
	ln net.Listener

	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	counts Counts
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Listen starts a proxy on an ephemeral localhost port.
func Listen(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("chaosproxy: config needs a target")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ResetAfterBytes <= 0 {
		cfg.ResetAfterBytes = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if sum := cfg.DropProb + cfg.Err503Prob + cfg.BlackholeProb + cfg.ResetProb; sum > 1 {
		return nil, fmt.Errorf("chaosproxy: fault probabilities sum to %.3f; want <= 1", sum)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:    ln,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		conns: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address ("127.0.0.1:port") — point the
// client here instead of at the backend.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the per-fault connection counts.
func (p *Proxy) Stats() Counts {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts
}

// SetFaults swaps the fault mix mid-run (target and seed are kept);
// connections accepted after the call draw from the new mix. Tests use
// this to turn a healthy proxy hostile mid-ladder and back.
func (p *Proxy) SetFaults(cfg Config) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cfg.Target = p.cfg.Target
	cfg.Seed = p.cfg.Seed
	if cfg.ResetAfterBytes <= 0 {
		cfg.ResetAfterBytes = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	p.cfg = cfg
}

// Close stops accepting, severs every live connection (including
// black-holed ones), and waits for the connection handlers to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close() //nolint:errcheck // severing
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// fault is one connection's drawn behaviour.
type fault int

const (
	faultNone fault = iota
	faultDrop
	fault503
	faultBlackhole
	faultReset
)

// draw picks the connection's fault and the effective config under one
// lock, and registers the connection for Close-time severing.
func (p *Proxy) draw(c net.Conn) (fault, Config, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return faultNone, p.cfg, false
	}
	p.conns[c] = struct{}{}
	p.counts.Conns++
	cfg := p.cfg
	u := p.rng.Float64()
	var extraDelay time.Duration
	if cfg.DelayJitter > 0 {
		extraDelay = time.Duration(p.rng.Int63n(int64(cfg.DelayJitter)))
	}
	cfg.Delay += extraDelay
	switch {
	case u < cfg.DropProb:
		p.counts.Drops++
		return faultDrop, cfg, true
	case u < cfg.DropProb+cfg.Err503Prob:
		p.counts.Err503s++
		return fault503, cfg, true
	case u < cfg.DropProb+cfg.Err503Prob+cfg.BlackholeProb:
		p.counts.Blackholes++
		return faultBlackhole, cfg, true
	case u < cfg.DropProb+cfg.Err503Prob+cfg.BlackholeProb+cfg.ResetProb:
		p.counts.Resets++
		return faultReset, cfg, true
	default:
		p.counts.Passed++
		return faultNone, cfg, true
	}
}

// forget drops a finished connection from the Close-time set.
func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go p.handle(c)
	}
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	defer p.forget(client)
	defer client.Close() //nolint:errcheck // best-effort teardown
	f, cfg, ok := p.draw(client)
	if !ok {
		return // proxy already closed
	}
	switch f {
	case faultDrop:
		// Reset rather than FIN so the client sees a hard failure even
		// if it has already sent its request.
		hardClose(client)
		return
	case fault503:
		p.inject503(client, cfg)
		return
	case faultBlackhole:
		// Swallow the request forever; Close (or the client giving up)
		// is the only exit.
		buf := make([]byte, 4096)
		for {
			if _, err := client.Read(buf); err != nil {
				return
			}
		}
	}
	if cfg.Delay > 0 {
		time.Sleep(cfg.Delay)
	}
	backend, err := net.Dial("tcp", cfg.Target)
	if err != nil {
		hardClose(client)
		return
	}
	defer backend.Close() //nolint:errcheck // best-effort teardown
	// Upstream: client bytes flow to the backend unmodified until
	// either side closes.
	go func() {
		buf := make([]byte, 32<<10)
		for {
			n, rerr := client.Read(buf)
			if n > 0 {
				if _, werr := backend.Write(buf[:n]); werr != nil {
					return
				}
			}
			if rerr != nil {
				// Half-close toward the backend so its response can
				// still drain on the other direction.
				if tc, ok := backend.(*net.TCPConn); ok {
					tc.CloseWrite() //nolint:errcheck
				}
				return
			}
		}
	}()
	// Downstream: relay the response, resetting mid-body when the
	// connection drew faultReset.
	limit := -1
	if f == faultReset {
		limit = cfg.ResetAfterBytes
	}
	buf := make([]byte, 32<<10)
	relayed := 0
	for {
		n, rerr := backend.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if limit >= 0 && relayed+n >= limit {
				client.Write(chunk[:limit-relayed]) //nolint:errcheck // about to reset anyway
				hardClose(client)
				return
			}
			if _, werr := client.Write(chunk); werr != nil {
				return
			}
			relayed += n
		}
		if rerr != nil {
			return
		}
	}
}

// inject503 reads the request's header block (enough for the client to
// consider the request sent) and answers a canned 503 with the
// configured Retry-After, then closes the connection.
func (p *Proxy) inject503(client net.Conn, cfg Config) {
	// Read until the end of the header block or the client stops
	// sending; the body, if any, is irrelevant to the injected answer.
	client.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	var head []byte
	buf := make([]byte, 4096)
	for len(head) < 64<<10 {
		n, err := client.Read(buf)
		head = append(head, buf[:n]...)
		if containsHeaderEnd(head) || err != nil {
			break
		}
	}
	if cfg.Delay > 0 {
		time.Sleep(cfg.Delay)
	}
	body := `{"error":"injected overload (chaosproxy)"}`
	secs := int((cfg.RetryAfter + time.Second - 1) / time.Second)
	fmt.Fprintf(client, //nolint:errcheck
		"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json; charset=utf-8\r\nRetry-After: %d\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		secs, len(body), body)
}

// containsHeaderEnd reports whether b holds a complete HTTP header
// block terminator.
func containsHeaderEnd(b []byte) bool {
	for i := 0; i+3 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' && b[i+2] == '\r' && b[i+3] == '\n' {
			return true
		}
	}
	return false
}

// hardClose resets the connection (SO_LINGER 0 → RST) instead of a
// graceful FIN, so clients observe the failure immediately even with
// unread response data in flight.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0) //nolint:errcheck
	}
	c.Close() //nolint:errcheck
}
