// Package pg implements the politeness-greedy (PG) baseline of Jiang et
// al. [18], the heuristic the paper compares HA* against (§V-E). PG scores
// every process by the degradation it *causes* to co-runners (its
// politeness), then greedily pairs the most impolite unassigned process
// with the most polite remaining ones, machine by machine.
package pg

import (
	"sort"
	"time"

	"cosched/internal/degradation"
	"cosched/internal/job"
	"cosched/internal/telemetry"
)

// Result is the schedule PG produced.
type Result struct {
	Groups [][]job.ProcID
	Cost   float64
}

// Politeness returns, for every process, the average degradation it
// inflicts on the other processes in pairwise co-runs. Higher values mean
// more impolite. Imaginary processes are perfectly polite (0).
func Politeness(c *degradation.Cost) []float64 {
	b := c.Batch
	n := b.NumProcs()
	caused := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		if b.Procs[i-1].Imaginary {
			continue
		}
		var sum float64
		var cnt int
		for j := 1; j <= n; j++ {
			if j == i || b.Procs[j-1].Imaginary {
				continue
			}
			sum += c.Oracle.Degradation(job.ProcID(j), []job.ProcID{job.ProcID(i)})
			cnt++
		}
		if cnt > 0 {
			caused[i] = sum / float64(cnt)
		}
	}
	return caused
}

// Solve runs the politeness-greedy co-scheduler and evaluates the
// schedule under the given cost model.
func Solve(c *degradation.Cost) *Result {
	return SolveObserved(c, nil)
}

// SolveObserved is Solve with telemetry: a non-nil registry receives the
// "pg.*" family (solves, machines produced, politeness-scoring and total
// wall time; DESIGN.md §6).
func SolveObserved(c *degradation.Cost, reg *telemetry.Registry) *Result {
	start := time.Now()
	res, scoreDur := solve(c)
	if reg != nil {
		reg.Counter("pg.solves").Add(1)
		reg.Counter("pg.machines").Add(int64(len(res.Groups)))
		reg.Counter("pg.politeness_ns").Add(scoreDur.Nanoseconds())
		reg.Counter("pg.solve_ns").Add(time.Since(start).Nanoseconds())
	}
	return res
}

func solve(c *degradation.Cost) (*Result, time.Duration) {
	b := c.Batch
	n := b.NumProcs()
	u := b.Cores
	scoreStart := time.Now()
	caused := Politeness(c)
	scoreDur := time.Since(scoreStart)

	// Order processes from most impolite to most polite.
	order := make([]int, n)
	for i := range order {
		order[i] = i + 1
	}
	sort.SliceStable(order, func(a, b int) bool { return caused[order[a]] > caused[order[b]] })

	assigned := make([]bool, n+1)
	var groups [][]job.ProcID
	for _, seed := range order {
		if assigned[seed] {
			continue
		}
		node := []job.ProcID{job.ProcID(seed)}
		assigned[seed] = true
		// Fill the machine with the most polite remaining processes
		// (scan the order from the back).
		for k := len(order) - 1; k >= 0 && len(node) < u; k-- {
			p := order[k]
			if !assigned[p] {
				node = append(node, job.ProcID(p))
				assigned[p] = true
			}
		}
		groups = append(groups, job.SortedProcIDs(node))
	}
	return &Result{Groups: groups, Cost: c.PartitionCost(groups)}, scoreDur
}
