package pg

import (
	"math"
	"testing"

	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/job"
	"cosched/internal/workload"
)

func testCost(t *testing.T, n, u int, seed int64) *degradation.Cost {
	t.Helper()
	m, err := cache.MachineByCores(u)
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.SyntheticSerialInstance(n, &m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in.Cost(degradation.ModePC)
}

func TestSolveProducesValidSchedule(t *testing.T) {
	for _, u := range []int{2, 4, 8} {
		c := testCost(t, 16, u, 1)
		res := Solve(c)
		if err := c.ValidatePartition(res.Groups); err != nil {
			t.Errorf("u=%d: %v", u, err)
		}
		if got := c.PartitionCost(res.Groups); math.Abs(got-res.Cost) > 1e-9 {
			t.Errorf("u=%d: reported cost %v != recomputed %v", u, res.Cost, got)
		}
	}
}

func TestPolitenessOrdersAggressors(t *testing.T) {
	// Build a pairwise instance where process 1 causes huge degradation
	// and process 2 causes none.
	bd := job.NewBuilder()
	for i := 0; i < 4; i++ {
		bd.AddSerial("s")
	}
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	mtx := make([][]float64, 4)
	for i := range mtx {
		mtx[i] = make([]float64, 4)
		for j := range mtx[i] {
			if i == j {
				continue
			}
			switch j {
			case 0:
				mtx[i][j] = 0.9 // everyone suffers 0.9 from process 1
			case 1:
				mtx[i][j] = 0.0
			default:
				mtx[i][j] = 0.3
			}
		}
	}
	o, err := degradation.NewPairwiseOracle(b, mtx, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := degradation.NewCost(b, o, degradation.ModePC)
	pol := Politeness(c)
	if !(pol[1] > pol[3] && pol[3] > pol[2]) {
		t.Errorf("politeness = %v; want caused(1) > caused(3,4) > caused(2)", pol[1:])
	}
	// PG must pair the aggressor (1) with the most polite process (2).
	res := Solve(c)
	var grpOf1 []job.ProcID
	for _, g := range res.Groups {
		for _, p := range g {
			if p == 1 {
				grpOf1 = g
			}
		}
	}
	if len(grpOf1) != 2 || (grpOf1[0] != 2 && grpOf1[1] != 2) {
		t.Errorf("PG grouped process 1 with %v; want process 2", grpOf1)
	}
}

func TestPolitenessImaginaryIsZero(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SerialInstance([]string{"BT", "CG", "EP"}, &m) // pads to 4
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	pol := Politeness(c)
	if pol[4] != 0 {
		t.Errorf("imaginary process politeness = %v; want 0", pol[4])
	}
	res := Solve(c)
	if err := c.ValidatePartition(res.Groups); err != nil {
		t.Error(err)
	}
}

func TestSolveHandlesParallelBatch(t *testing.T) {
	m := cache.QuadCore
	in, err := workload.SyntheticMixedInstance(16, 2, 4, &m, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Cost(degradation.ModePC)
	res := Solve(c)
	if err := c.ValidatePartition(res.Groups); err != nil {
		t.Error(err)
	}
	if res.Cost <= 0 {
		t.Errorf("mixed-batch PG cost = %v; want > 0", res.Cost)
	}
}
