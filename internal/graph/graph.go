// Package graph implements the co-scheduling graph of §III-A: every node
// is a u-cardinality process set (one filled machine), nodes are organised
// into levels by their smallest process ID, and a co-scheduling solution
// is a valid path — one that visits each process exactly once — from the
// start to the end of the graph. The graph is never materialised: levels
// hold up to C(n-1, u-1) nodes, so node enumeration is lazy and the
// weight of a node is computed (and memoised via the degradation oracle)
// on first touch.
package graph

import (
	"fmt"
	"sort"

	"cosched/internal/comm"
	"cosched/internal/degradation"
	"cosched/internal/job"
)

// Graph binds a batch and its cost model into the co-scheduling graph.
type Graph struct {
	Batch *job.Batch
	Cost  *degradation.Cost
	// Patterns supplies the communication structure used by the
	// communication-aware condensation keys (§III-E); nil entries (or a
	// nil map) mean no communication.
	Patterns map[job.JobID]*comm.Pattern

	// EnumLimit caps how many nodes a single level enumeration may
	// visit; levels beyond it are not exactly enumerable and callers
	// fall back to bounds. Zero means DefaultEnumLimit.
	EnumLimit int

	levelStats map[job.ProcID]*LevelStats
}

// DefaultEnumLimit is the default per-level node enumeration budget.
const DefaultEnumLimit = 4_000_000

// New constructs the graph view for a batch/cost pair.
func New(c *degradation.Cost, patterns map[job.JobID]*comm.Pattern) *Graph {
	return &Graph{
		Batch:      c.Batch,
		Cost:       c,
		Patterns:   patterns,
		levelStats: make(map[job.ProcID]*LevelStats),
	}
}

// U returns the node cardinality (cores per machine).
func (g *Graph) U() int { return g.Batch.Cores }

// N returns the number of processes.
func (g *Graph) N() int { return g.Batch.NumProcs() }

// Binomial returns C(n, k) with saturation at math.MaxInt64/2 to keep
// feasibility checks overflow-safe.
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const sat = int64(1) << 62
	r := int64(1)
	for i := 1; i <= k; i++ {
		f := int64(n - k + i)
		if r > sat/f {
			return sat // would overflow: saturate before multiplying
		}
		r = r * f / int64(i)
		if r >= sat {
			return sat
		}
	}
	return r
}

// ForEachNode enumerates the nodes led by leader whose co-members are
// drawn from avail (ascending process IDs, all greater than leader and not
// equal to it). Each node is passed as a full sorted u-slice that is
// reused between calls — copy it to retain it. fn returning false stops
// the enumeration.
func (g *Graph) ForEachNode(leader job.ProcID, avail []job.ProcID, fn func(node []job.ProcID) bool) {
	u := g.U()
	node := make([]job.ProcID, u)
	node[0] = leader
	if u == 1 {
		fn(node)
		return
	}
	r := u - 1
	if len(avail) < r {
		return
	}
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	for {
		for i, ai := range idx {
			node[i+1] = avail[ai]
		}
		if !fn(node) {
			return
		}
		// advance the combination
		i := r - 1
		for i >= 0 && idx[i] == len(avail)-r+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < r; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// CondenseKey returns the communication-aware condensation key of a node
// (§III-E): two nodes in the same level condense when they contain the
// same serial jobs, the same number of processes per parallel job, and
// identical per-dimension external-communication counts for each PC job.
// The returned key is identical exactly for condensable nodes.
func (g *Graph) CondenseKey(node []job.ProcID) string {
	b := g.Batch
	// Serial and imaginary members identify themselves; parallel members
	// contribute (job, count, property...).
	type parEntry struct {
		j     job.JobID
		ranks []int
	}
	var pars []parEntry
	key := make([]byte, 0, 4*len(node))
	appendInt := func(v int) {
		key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	for _, p := range node {
		j := b.JobOf(p)
		if j == nil || j.Kind == job.Serial {
			appendInt(int(p))
			continue
		}
		rank := b.Proc(p).Rank
		found := false
		for i := range pars {
			if pars[i].j == j.ID {
				pars[i].ranks = append(pars[i].ranks, rank)
				found = true
				break
			}
		}
		if !found {
			pars = append(pars, parEntry{j: j.ID, ranks: []int{rank}})
		}
	}
	sort.Slice(pars, func(i, k int) bool { return pars[i].j < pars[k].j })
	for _, pe := range pars {
		appendInt(-1) // marker separating serial IDs from job entries
		appendInt(int(pe.j))
		appendInt(len(pe.ranks))
		var pt *comm.Pattern
		if g.Patterns != nil {
			pt = g.Patterns[pe.j]
		}
		if pt != nil {
			for _, c := range pt.Property(pe.ranks) {
				appendInt(c)
			}
		}
	}
	return string(key)
}

// NodeID formats a node the way the paper writes them: <1,2,...>.
func NodeID(node []job.ProcID) string {
	s := "<"
	for i, p := range node {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(int(p))
	}
	return s + ">"
}
