package graph

import (
	"strings"
	"testing"

	"cosched/internal/job"
)

func TestWriteDOT(t *testing.T) {
	c, _ := pairInstance(t, 6, 2, 0.01)
	g := New(c, nil)
	var sb strings.Builder
	path := [][]job.ProcID{{1, 2}, {3, 4}, {5, 6}}
	if err := g.WriteDOT(&sb, path, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph cosched",
		`"<1,2>"`, `"<2,3>"`, `"<5,6>"`,
		"cluster_level1", "cluster_level5",
		`start -> "<1,2>"`, `"<1,2>" -> "<3,4>"`, `"<5,6>" -> end`,
		"fillcolor=lightblue",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// level 1 of a 6-process dual-core graph has C(5,1)=5 nodes
	if got := strings.Count(out, "cluster_level"); got != 5 {
		t.Errorf("levels rendered = %d; want 5", got)
	}
}

func TestWriteDOTBudget(t *testing.T) {
	c, _ := pairInstance(t, 24, 4, 0.001)
	g := New(c, nil)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, nil, 100); err == nil {
		t.Error("oversized graph rendered without error")
	}
}

func TestWriteDOTNoHighlight(t *testing.T) {
	c, _ := pairInstance(t, 4, 2, 0.01)
	g := New(c, nil)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, nil, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "lightblue") {
		t.Error("highlight styling present without a highlighted path")
	}
}
