package graph

import (
	"fmt"
	"io"

	"cosched/internal/job"
)

// WriteDOT renders the co-scheduling graph in Graphviz DOT form, the way
// the paper's Fig. 3 draws it: one cluster per level, node labels
// <i,j,...> with the node weight underneath, and — optionally — the edges
// of one highlighted valid path (a schedule). Only graphs whose levels
// are enumerable and whose total node count stays under maxNodes are
// rendered; bigger graphs return an error instead of an unreadable file.
func (g *Graph) WriteDOT(w io.Writer, highlight [][]job.ProcID, maxNodes int) error {
	if maxNodes <= 0 {
		maxNodes = 512
	}
	total := int64(0)
	lastLevel := g.N() - g.U() + 1
	for l := 1; l <= lastLevel; l++ {
		total += Binomial(g.N()-l, g.U()-1)
		if total > int64(maxNodes) {
			return fmt.Errorf("graph: %d+ nodes exceed the DOT budget of %d", total, maxNodes)
		}
	}
	onPath := map[string]bool{}
	var pathIDs []string
	if highlight != nil {
		for _, node := range CanonicalPath(highlight) {
			id := NodeID(node)
			onPath[id] = true
			pathIDs = append(pathIDs, id)
		}
	}
	fmt.Fprintln(w, "digraph cosched {")
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=ellipse, fontsize=10];")
	fmt.Fprintln(w, `  start [shape=circle, label="start"];`)
	fmt.Fprintln(w, `  end [shape=circle, label="end"];`)
	for l := 1; l <= lastLevel; l++ {
		fmt.Fprintf(w, "  subgraph cluster_level%d {\n", l)
		fmt.Fprintf(w, "    label=\"level %d\"; color=gray;\n", l)
		g.ForEachNode(job.ProcID(l), g.fullLevelAvail(job.ProcID(l)), func(node []job.ProcID) bool {
			id := NodeID(node)
			style := ""
			if onPath[id] {
				style = ", style=filled, fillcolor=lightblue"
			}
			fmt.Fprintf(w, "    %q [label=\"%s\\n%.3f\"%s];\n", id, id, g.Cost.NodeWeight(node), style)
			return true
		})
		fmt.Fprintln(w, "  }")
	}
	// Edges of the highlighted path; the full edge set is dynamic (built
	// during search), so only the schedule's own edges are drawn, as the
	// paper does for clarity.
	if len(pathIDs) > 0 {
		fmt.Fprintf(w, "  start -> %q;\n", pathIDs[0])
		for i := 1; i < len(pathIDs); i++ {
			fmt.Fprintf(w, "  %q -> %q;\n", pathIDs[i-1], pathIDs[i])
		}
		fmt.Fprintf(w, "  %q -> end;\n", pathIDs[len(pathIDs)-1])
	}
	fmt.Fprintln(w, "}")
	return nil
}
