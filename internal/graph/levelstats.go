package graph

import (
	"sort"

	"cosched/internal/job"
)

// LevelStats summarises one fully-enumerated level of the co-scheduling
// graph: the multiset of node weights in ascending order plus prefix sums.
// The h(v) strategies of §III-D and the MER analysis of §IV consume these.
type LevelStats struct {
	Leader job.ProcID
	// SortedWeights holds every node weight of the level, ascending.
	SortedWeights []float64
	prefix        []float64 // prefix[i] = sum of the i smallest weights
}

// Min returns the smallest node weight in the level.
func (ls *LevelStats) Min() float64 {
	if len(ls.SortedWeights) == 0 {
		return 0
	}
	return ls.SortedWeights[0]
}

// KSmallestSum returns the sum of the k smallest node weights (all of
// them if the level has fewer than k nodes).
func (ls *LevelStats) KSmallestSum(k int) float64 {
	if k < 0 {
		k = 0
	}
	if k >= len(ls.prefix) {
		k = len(ls.prefix) - 1
	}
	return ls.prefix[k]
}

// Size returns the node count of the level.
func (ls *LevelStats) Size() int { return len(ls.SortedWeights) }

// enumLimit returns the effective per-level enumeration budget.
func (g *Graph) enumLimit() int64 {
	if g.EnumLimit > 0 {
		return int64(g.EnumLimit)
	}
	return DefaultEnumLimit
}

// LevelEnumerable reports whether the level led by the given process is
// small enough to enumerate exactly under the graph's budget.
func (g *Graph) LevelEnumerable(leader job.ProcID) bool {
	return Binomial(g.N()-int(leader), g.U()-1) <= g.enumLimit()
}

// fullLevelAvail returns all processes with IDs greater than leader: the
// co-member pool of the *static* level, independent of any path.
func (g *Graph) fullLevelAvail(leader job.ProcID) []job.ProcID {
	n := g.N()
	avail := make([]job.ProcID, 0, n-int(leader))
	for p := int(leader) + 1; p <= n; p++ {
		avail = append(avail, job.ProcID(p))
	}
	return avail
}

// LevelStats enumerates (once, then caches) the level led by the given
// process and returns its weight statistics. ok is false when the level
// exceeds the enumeration budget; callers must then fall back to bounds.
func (g *Graph) LevelStats(leader job.ProcID) (ls *LevelStats, ok bool) {
	if ls, ok := g.levelStats[leader]; ok {
		return ls, ls != nil
	}
	if !g.LevelEnumerable(leader) {
		g.levelStats[leader] = nil
		return nil, false
	}
	var weights []float64
	g.ForEachNode(leader, g.fullLevelAvail(leader), func(node []job.ProcID) bool {
		weights = append(weights, g.Cost.NodeWeight(node))
		return true
	})
	sort.Float64s(weights)
	prefix := make([]float64, len(weights)+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	ls = &LevelStats{Leader: leader, SortedWeights: weights, prefix: prefix}
	g.levelStats[leader] = ls
	return ls, true
}

// EffectiveRank computes the §IV effective rank of a node of the shortest
// path: the number of *valid* nodes (nodes sharing no process with the
// used set) whose weight is strictly smaller than the node's own, plus
// one. used must not contain the node's own members. ok is false when the
// node's level is not enumerable.
func (g *Graph) EffectiveRank(node []job.ProcID, used func(job.ProcID) bool) (rank int, ok bool) {
	leader := node[0]
	if !g.LevelEnumerable(leader) {
		return 0, false
	}
	w := g.Cost.NodeWeight(node)
	rank = 1
	g.ForEachNode(leader, g.fullLevelAvail(leader), func(cand []job.ProcID) bool {
		cw := g.Cost.NodeWeight(cand)
		if cw >= w {
			return true
		}
		for _, p := range cand[1:] {
			if used(p) {
				return true
			}
		}
		rank++
		return true
	})
	return rank, true
}

// CanonicalPath sorts each group ascending and orders the groups by their
// leaders, turning an arbitrary partition into valid-path order (in a
// complete partition, ordering by smallest member makes every leader the
// smallest process not used by earlier nodes).
func CanonicalPath(groups [][]job.ProcID) [][]job.ProcID {
	out := make([][]job.ProcID, len(groups))
	for i, grp := range groups {
		out[i] = job.SortedProcIDs(grp)
	}
	sort.Slice(out, func(i, k int) bool { return out[i][0] < out[k][0] })
	return out
}

// PathMER returns the Maximum Effective Rank over the nodes of a complete
// valid path (§IV): for each node, its effective rank within its level
// given the processes consumed by the preceding nodes; the maximum of
// those ranks. The partition is canonicalised into valid-path order
// first. ok is false if any level is not enumerable.
func (g *Graph) PathMER(groups [][]job.ProcID) (mer int, ok bool) {
	groups = CanonicalPath(groups)
	used := make(map[job.ProcID]bool, g.N())
	for _, node := range groups {
		rank, ok := g.EffectiveRank(node, func(p job.ProcID) bool { return used[p] })
		if !ok {
			return 0, false
		}
		if rank > mer {
			mer = rank
		}
		for _, p := range node {
			used[p] = true
		}
	}
	return mer, true
}
