package graph

import (
	"math"
	"testing"

	"cosched/internal/comm"
	"cosched/internal/degradation"
	"cosched/internal/job"
)

// pairOracle builds a tiny pairwise instance for graph tests.
func pairInstance(t *testing.T, n, u int, scale float64) (*degradation.Cost, *job.Batch) {
	t.Helper()
	bd := job.NewBuilder()
	for i := 0; i < n; i++ {
		bd.AddSerial("s")
	}
	b, err := bd.Build(u)
	if err != nil {
		t.Fatal(err)
	}
	nn := b.NumProcs()
	m := make([][]float64, nn)
	for i := range m {
		m[i] = make([]float64, nn)
		for j := range m[i] {
			if i != j {
				m[i][j] = scale * float64(i+1) * float64(j+1)
			}
		}
	}
	o, err := degradation.NewPairwiseOracle(b, m, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return degradation.NewCost(b, o, degradation.ModePC), b
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 2, 10}, {6, 1, 6}, {6, 0, 1}, {6, 6, 1}, {6, 7, 0}, {5, -1, 0},
		{23, 3, 1771}, {55, 3, 26235}, {99, 3, 156849},
	}
	for _, tc := range cases {
		if got := Binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("Binomial(%d,%d) = %d; want %d", tc.n, tc.k, got, tc.want)
		}
	}
	// The paper's §IV example: C(91,3) = 121485 valid nodes for n=100,
	// u=4, k=2.
	if got := Binomial(91, 3); got != 121485 {
		t.Errorf("Binomial(91,3) = %d; want 121485 (paper's example)", got)
	}
	// saturation
	if got := Binomial(1000, 500); got != int64(1)<<62 {
		t.Errorf("Binomial(1000,500) = %d; want saturated", got)
	}
}

func TestForEachNodeEnumeratesAllCombinations(t *testing.T) {
	c, _ := pairInstance(t, 6, 3, 0.01)
	g := New(c, nil)
	var nodes [][]job.ProcID
	avail := []job.ProcID{2, 3, 4, 5, 6}
	g.ForEachNode(1, avail, func(node []job.ProcID) bool {
		nodes = append(nodes, append([]job.ProcID(nil), node...))
		return true
	})
	if got := len(nodes); got != 10 { // C(5,2)
		t.Fatalf("enumerated %d nodes; want 10", got)
	}
	seen := map[string]bool{}
	for _, nd := range nodes {
		if nd[0] != 1 {
			t.Errorf("node %v not led by 1", nd)
		}
		if !(nd[0] < nd[1] && nd[1] < nd[2]) {
			t.Errorf("node %v not ascending", nd)
		}
		seen[NodeID(nd)] = true
	}
	if len(seen) != 10 {
		t.Errorf("duplicate nodes in enumeration: %d unique", len(seen))
	}
}

func TestForEachNodeEarlyStop(t *testing.T) {
	c, _ := pairInstance(t, 6, 3, 0.01)
	g := New(c, nil)
	count := 0
	g.ForEachNode(1, []job.ProcID{2, 3, 4, 5, 6}, func(node []job.ProcID) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Errorf("enumeration ran %d times; want 4", count)
	}
}

func TestForEachNodeSingleCore(t *testing.T) {
	c, _ := pairInstance(t, 4, 1, 0.01)
	g := New(c, nil)
	var got [][]job.ProcID
	g.ForEachNode(2, nil, func(node []job.ProcID) bool {
		got = append(got, append([]job.ProcID(nil), node...))
		return true
	})
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != 2 {
		t.Errorf("u=1 enumeration = %v; want [[2]]", got)
	}
}

func TestForEachNodeInsufficientAvail(t *testing.T) {
	c, _ := pairInstance(t, 6, 3, 0.01)
	g := New(c, nil)
	called := false
	g.ForEachNode(5, []job.ProcID{6}, func(node []job.ProcID) bool {
		called = true
		return true
	})
	if called {
		t.Error("enumeration produced nodes from an undersized pool")
	}
}

func TestLevelStats(t *testing.T) {
	c, _ := pairInstance(t, 6, 2, 0.01)
	g := New(c, nil)
	ls, ok := g.LevelStats(1)
	if !ok {
		t.Fatal("level 1 not enumerable")
	}
	if got := ls.Size(); got != 5 { // nodes <1,2>..<1,6>
		t.Fatalf("level 1 size = %d; want 5", got)
	}
	// weights ascending
	for i := 1; i < len(ls.SortedWeights); i++ {
		if ls.SortedWeights[i] < ls.SortedWeights[i-1] {
			t.Fatal("weights not sorted")
		}
	}
	// Min is the weight of <1,2>: d(1|2)+d(2|1) = 0.01*(1*2 + 2*1)
	want := 0.01 * 4
	if math.Abs(ls.Min()-want) > 1e-12 {
		t.Errorf("level 1 min = %v; want %v", ls.Min(), want)
	}
	if math.Abs(ls.KSmallestSum(2)-(ls.SortedWeights[0]+ls.SortedWeights[1])) > 1e-12 {
		t.Error("KSmallestSum(2) mismatch")
	}
	if ls.KSmallestSum(99) != ls.KSmallestSum(5) {
		t.Error("KSmallestSum should clamp at level size")
	}
	if ls.KSmallestSum(-1) != 0 {
		t.Error("KSmallestSum(-1) != 0")
	}
	// cached: same pointer on second call
	ls2, _ := g.LevelStats(1)
	if ls2 != ls {
		t.Error("LevelStats not cached")
	}
}

func TestLevelEnumerableBudget(t *testing.T) {
	c, _ := pairInstance(t, 12, 4, 0.001)
	g := New(c, nil)
	g.EnumLimit = 10 // C(11,3)=165 exceeds it
	if g.LevelEnumerable(1) {
		t.Error("level 1 reported enumerable under a tiny budget")
	}
	if _, ok := g.LevelStats(1); ok {
		t.Error("LevelStats succeeded over budget")
	}
	if g.LevelEnumerable(10) != true { // C(2,3)=0 nodes
		t.Error("trailing level should be enumerable")
	}
}

func TestCondenseKeySerialNodesDistinct(t *testing.T) {
	c, _ := pairInstance(t, 6, 2, 0.01)
	g := New(c, nil)
	k1 := g.CondenseKey([]job.ProcID{1, 2})
	k2 := g.CondenseKey([]job.ProcID{1, 3})
	if k1 == k2 {
		t.Error("distinct serial nodes share a condensation key")
	}
}

func TestCondenseKeyMatchesPaperFig4(t *testing.T) {
	// 9-process PC job on a 3x3 grid plus one serial job, as in Fig. 4.
	bd := job.NewBuilder()
	pcid := bd.AddPC("par", 9)
	bd.AddSerial("ser")
	b, err := bd.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	n := b.NumProcs()
	mtx := make([][]float64, n)
	for i := range mtx {
		mtx[i] = make([]float64, n)
	}
	o, err := degradation.NewPairwiseOracle(b, mtx, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cost := degradation.NewCost(b, o, degradation.ModePC)
	patterns := map[job.JobID]*comm.Pattern{pcid: comm.Grid2D(3, 3, 1, 1)}
	g := New(cost, patterns)

	key := func(a, bb int) string { return g.CondenseKey([]job.ProcID{job.ProcID(a), job.ProcID(bb)}) }
	// Fig. 4: <1,3>, <1,7>, <1,9> condense (property (2,2)); <1,2> does not.
	if key(1, 3) != key(1, 7) || key(1, 3) != key(1, 9) {
		t.Error("<1,3>, <1,7>, <1,9> should condense")
	}
	if key(1, 2) == key(1, 3) {
		t.Error("<1,2> must not condense with <1,3>")
	}
	// <1,4> has property (2,1) and <1,2> has (1,2): distinct.
	if key(1, 2) == key(1, 4) {
		t.Error("<1,2> must not condense with <1,4>")
	}
	// A serial member distinguishes nodes: <1,10> unique.
	if key(1, 10) == key(1, 3) {
		t.Error("serial node condensed with parallel node")
	}
	// <1,5> and <1,6>: properties (3,3) and (2,3) per Fig. 4: distinct.
	if key(1, 5) == key(1, 6) {
		t.Error("<1,5> must not condense with <1,6>")
	}
}

func TestEffectiveRankAndPathMER(t *testing.T) {
	c, _ := pairInstance(t, 6, 2, 0.01)
	g := New(c, nil)
	// With weights 0.02*i*j, the cheapest partner for any leader is the
	// smallest free ID. Optimal path: <1,2>,<3,4>,<5,6>... verify MER of
	// that path: each node's effective rank.
	groups := [][]job.ProcID{{1, 2}, {3, 4}, {5, 6}}
	mer, ok := g.PathMER(groups)
	if !ok {
		t.Fatal("PathMER not computable")
	}
	// <1,2> is rank 1 in level 1 (cheapest). <3,4> is the cheapest valid
	// node of level 3 (nodes <3,4>..<3,6>). <5,6> likewise. MER = 1.
	if mer != 1 {
		t.Errorf("MER = %d; want 1", mer)
	}
	// A deliberately bad path has a larger MER.
	bad := [][]job.ProcID{{1, 6}, {2, 5}, {3, 4}}
	mer2, ok := g.PathMER(bad)
	if !ok {
		t.Fatal("PathMER not computable")
	}
	if mer2 <= 1 {
		t.Errorf("bad path MER = %d; want > 1", mer2)
	}
}

func TestPathMERCanonicalises(t *testing.T) {
	c, _ := pairInstance(t, 6, 2, 0.01)
	g := New(c, nil)
	a, _ := g.PathMER([][]job.ProcID{{1, 2}, {3, 4}, {5, 6}})
	b, _ := g.PathMER([][]job.ProcID{{6, 5}, {4, 3}, {2, 1}})
	if a != b {
		t.Errorf("MER depends on group ordering: %d vs %d", a, b)
	}
}

func TestNodeID(t *testing.T) {
	if got := NodeID([]job.ProcID{1, 2}); got != "<1,2>" {
		t.Errorf("NodeID = %q", got)
	}
}
