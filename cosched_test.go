package cosched

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cosched/internal/telemetry"
)

func buildSmallInstance(t *testing.T) *Instance {
	t.Helper()
	w := NewWorkload()
	for _, n := range []string{"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP"} {
		w.AddSerial(n)
	}
	inst, err := w.Build(QuadCore)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSolveAllMethodsAgreeOnCostOrdering(t *testing.T) {
	inst := buildSmallInstance(t)
	costs := map[Method]float64{}
	for _, m := range []Method{MethodOAStar, MethodHAStar, MethodIP, MethodOSVP, MethodPG, MethodBruteForce} {
		s, err := Solve(inst, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if s.NumMachines() != 2 {
			t.Errorf("%v: machines = %d; want 2", m, s.NumMachines())
		}
		costs[m] = s.TotalDegradation
	}
	opt := costs[MethodBruteForce]
	for _, m := range []Method{MethodOAStar, MethodIP, MethodOSVP} {
		if math.Abs(costs[m]-opt) > 1e-6 {
			t.Errorf("%v cost %v != optimum %v", m, costs[m], opt)
		}
	}
	for _, m := range []Method{MethodHAStar, MethodPG} {
		if costs[m] < opt-1e-9 {
			t.Errorf("%v cost %v below optimum %v", m, costs[m], opt)
		}
	}
}

// TestSolveParallelismOption: the public Parallelism knob must not
// change the optimal cost, must be rejected when negative, and the
// schedule's Stats must record what actually ran.
func TestSolveParallelismOption(t *testing.T) {
	inst := buildSmallInstance(t)
	base, err := Solve(inst, Options{Method: MethodOAStar, HStrategy: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Parallelism != 1 {
		t.Errorf("sequential solve recorded parallelism %d", base.Stats.Parallelism)
	}
	for _, p := range []int{0, 2, 4} {
		s, err := Solve(inst, Options{Method: MethodOAStar, HStrategy: 3, Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if math.Abs(s.TotalDegradation-base.TotalDegradation) > 1e-9 {
			t.Errorf("parallelism %d changed cost %v -> %v", p, base.TotalDegradation, s.TotalDegradation)
		}
		if p > 1 && s.Stats.Parallelism != p {
			t.Errorf("requested parallelism %d, stats recorded %d", p, s.Stats.Parallelism)
		}
	}
	if _, err := Solve(inst, Options{Parallelism: -1}); err == nil {
		t.Error("negative Parallelism accepted")
	}
}

func TestSolveMixedWorkload(t *testing.T) {
	w := NewWorkload()
	w.AddSerial("art")
	w.AddSerial("EP")
	w.AddSerial("vpr")
	w.AddPE("MCM", 2)
	w.AddPC("MG-Par", 3)
	inst, err := w.Build(QuadCore)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Solve(inst, Options{Method: MethodOAStar})
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalDegradation <= 0 {
		t.Errorf("total degradation = %v; want > 0", sched.TotalDegradation)
	}
	degs := sched.JobDegradations()
	if len(degs) != 5 {
		t.Errorf("JobDegradations has %d entries: %v", len(degs), degs)
	}
	// the per-job values must sum to the objective
	var sum float64
	for _, d := range degs {
		sum += d
	}
	if math.Abs(sum-sched.TotalDegradation) > 1e-9 {
		t.Errorf("per-job sum %v != total %v", sum, sched.TotalDegradation)
	}
}

func TestAccountingModesOrdering(t *testing.T) {
	w := NewWorkload()
	w.AddPC("CG-Par", 4)
	w.AddSerial("art")
	w.AddSerial("EP")
	w.AddSerial("IS")
	w.AddSerial("vpr")
	inst, err := w.Build(QuadCore)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Solve(inst, Options{Method: MethodOAStar, Accounting: AccountPC})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := Solve(inst, Options{Method: MethodOAStar, Accounting: AccountPE})
	if err != nil {
		t.Fatal(err)
	}
	// The PC objective includes communication, so its optimum cannot be
	// below the PE optimum of the same batch.
	if pc.TotalDegradation < pe.TotalDegradation-1e-9 {
		t.Errorf("PC optimum %v below PE optimum %v", pc.TotalDegradation, pe.TotalDegradation)
	}
}

func TestWorkloadErrorsSurfaceAtBuild(t *testing.T) {
	w := NewWorkload()
	w.AddSerial("not-a-benchmark")
	if _, err := w.Build(QuadCore); err == nil {
		t.Error("unknown program accepted")
	}
	w2 := NewWorkload()
	w2.AddPE("nope", 2)
	if _, err := w2.Build(QuadCore); err == nil {
		t.Error("unknown PE program accepted")
	}
	w3 := NewWorkload()
	w3.AddPC("nope", 2)
	if _, err := w3.Build(QuadCore); err == nil {
		t.Error("unknown PC program accepted")
	}
}

func TestSolveRejectsBadInputs(t *testing.T) {
	if _, err := Solve(nil, Options{}); err == nil {
		t.Error("nil instance accepted")
	}
	inst := buildSmallInstance(t)
	if _, err := Solve(inst, Options{Method: Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := Solve(inst, Options{Method: MethodIP, IPConfig: "nope"}); err == nil {
		t.Error("unknown IP config accepted")
	}
}

func TestScheduleRendering(t *testing.T) {
	inst := buildSmallInstance(t)
	sched, err := Solve(inst, Options{Method: MethodHAStar})
	if err != nil {
		t.Fatal(err)
	}
	out := sched.String()
	for _, want := range []string{"machine", "total degradation", "BT"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	pl := sched.Placements()
	if len(pl) != 8 {
		t.Errorf("placements = %d; want 8", len(pl))
	}
	seen := map[int]bool{}
	for _, p := range pl {
		if p.Machine < 0 || p.Machine >= 2 || p.Core < 0 || p.Core >= 4 {
			t.Errorf("placement out of range: %+v", p)
		}
		if seen[p.Process] {
			t.Errorf("process %d placed twice", p.Process)
		}
		seen[p.Process] = true
	}
	groups := sched.Groups()
	if len(groups) != 2 || len(groups[0]) != 4 {
		t.Errorf("Groups() = %v", groups)
	}
}

func TestSyntheticConstructors(t *testing.T) {
	for _, mk := range []MachineKind{DualCore, QuadCore, EightCore} {
		inst, err := SyntheticSerial(mk.Cores()*3, mk, 7)
		if err != nil {
			t.Fatalf("%v: %v", mk, err)
		}
		if inst.NumProcesses() != mk.Cores()*3 {
			t.Errorf("%v: procs = %d", mk, inst.NumProcesses())
		}
	}
	large, err := SyntheticLarge(96, QuadCore, 7)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Solve(large, Options{Method: MethodHAStar})
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumMachines() != 24 {
		t.Errorf("large HA*: machines = %d; want 24", sched.NumMachines())
	}
	mixed, err := SyntheticMixed(16, 2, 4, QuadCore, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.NumJobs() != 2+8 {
		t.Errorf("mixed jobs = %d; want 10", mixed.NumJobs())
	}
}

func TestSimulate(t *testing.T) {
	inst := buildSmallInstance(t)
	opt, err := Solve(inst, Options{Method: MethodOAStar})
	if err != nil {
		t.Fatal(err)
	}
	pgSched, err := Solve(inst, Options{Method: MethodPG})
	if err != nil {
		t.Fatal(err)
	}
	execOpt, err := opt.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	execPG, err := pgSched.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if execOpt.Makespan <= 0 || execOpt.MeanJobFinish <= 0 {
		t.Errorf("degenerate execution: %+v", execOpt)
	}
	if len(execOpt.JobFinish) != 8 {
		t.Errorf("JobFinish entries = %d; want 8", len(execOpt.JobFinish))
	}
	if len(execOpt.MachineBusy) != opt.NumMachines() {
		t.Errorf("MachineBusy entries = %d; want %d", len(execOpt.MachineBusy), opt.NumMachines())
	}
	// A schedule with lower objective should not lose substantially
	// more wall-clock time than a worse one.
	if execOpt.SlowdownSeconds > execPG.SlowdownSeconds*1.1 {
		t.Errorf("optimal schedule lost %.1fs; PG lost %.1fs", execOpt.SlowdownSeconds, execPG.SlowdownSeconds)
	}
}

func TestMachineKindStrings(t *testing.T) {
	if DualCore.String() != "dual-core" || QuadCore.Cores() != 4 || EightCore.Cores() != 8 {
		t.Error("machine kind metadata wrong")
	}
	if !strings.Contains(MachineKind(9).String(), "9") {
		t.Error("unknown machine kind string")
	}
}

func TestMethodStrings(t *testing.T) {
	for m, want := range map[Method]string{
		MethodOAStar: "OA*", MethodHAStar: "HA*", MethodIP: "IP",
		MethodOSVP: "O-SVP", MethodPG: "PG", MethodBruteForce: "brute-force",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q; want %q", m, m.String(), want)
		}
	}
}

func TestProgramCatalogues(t *testing.T) {
	if len(SerialPrograms()) != 16 || len(PEPrograms()) != 5 || len(PCPrograms()) != 4 {
		t.Error("catalogue sizes wrong")
	}
}

func TestJobNames(t *testing.T) {
	inst := buildSmallInstance(t)
	names := inst.JobNames()
	if len(names) != 8 || names[0] != "BT" {
		t.Errorf("JobNames = %v", names)
	}
}

func TestCompare(t *testing.T) {
	inst := buildSmallInstance(t)
	cmp := Compare(inst, nil, Options{})
	if len(cmp.Rows) != 3 {
		t.Fatalf("rows = %d; want 3 defaults", len(cmp.Rows))
	}
	best := cmp.Best()
	if best == nil {
		t.Fatal("no successful method")
	}
	if best.Method != MethodOAStar {
		t.Errorf("best method = %v; want OA* (it is optimal)", best.Method)
	}
	out := cmp.String()
	for _, want := range []string{"OA*", "HA*", "PG", "total deg."} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison rendering missing %q", want)
		}
	}
	// A failing method is reported, not fatal.
	cmp2 := Compare(inst, []Method{Method(99)}, Options{})
	if cmp2.Rows[0].Err == nil {
		t.Error("unknown method did not error")
	}
	if cmp2.Best() != nil {
		t.Error("Best() returned a failed row")
	}
	if !strings.Contains(cmp2.String(), "failed") {
		t.Error("failure not rendered")
	}
}

func TestSimulateUsesPhysicalModel(t *testing.T) {
	// An SE-optimised schedule must be judged under the full model: for
	// a batch with communicating jobs its simulated slowdown can only
	// be >= the PC-optimised schedule's.
	w := NewWorkload()
	w.AddPC("MG-Par", 4)
	w.AddSerial("art")
	w.AddSerial("EP")
	w.AddSerial("vpr")
	w.AddSerial("IS")
	inst, err := w.Build(QuadCore)
	if err != nil {
		t.Fatal(err)
	}
	se, err := Solve(inst, Options{Method: MethodOAStar, Accounting: AccountSE})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Solve(inst, Options{Method: MethodOAStar, Accounting: AccountPC})
	if err != nil {
		t.Fatal(err)
	}
	execSE, err := se.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	execPC, err := pc.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if execSE.SlowdownSeconds < execPC.SlowdownSeconds-1e-9 {
		t.Errorf("SE-optimised schedule simulated better (%v) than PC-optimised (%v)",
			execSE.SlowdownSeconds, execPC.SlowdownSeconds)
	}
}

func TestWriteGraphDOT(t *testing.T) {
	w := NewWorkload()
	for _, n := range []string{"BT", "CG", "EP", "FT", "IS", "LU"} {
		w.AddSerial(n)
	}
	inst, err := w.Build(DualCore)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Solve(inst, Options{Method: MethodOAStar})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := inst.WriteGraphDOT(&sb, sched, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph cosched") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(sb.String(), "lightblue") {
		t.Error("schedule not highlighted")
	}
	// large graphs must refuse
	big, err := SyntheticSerial(40, QuadCore, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.WriteGraphDOT(&sb, nil, 100); err == nil {
		t.Error("oversized graph rendered")
	}
}

// TestSolvePhasesAndEventSink pins the observability contract of Solve:
// every call reports a per-phase wall-clock breakdown, and a configured
// EventSink receives the full trace stream (fanned out with
// EventTraceWriter when both are set) under one shared solve id.
func TestSolvePhasesAndEventSink(t *testing.T) {
	inst := buildSmallInstance(t)
	var buf bytes.Buffer
	fr := telemetry.NewFlightRecorder(64)
	sched, err := Solve(inst, Options{
		Method:           MethodOAStar,
		EventTraceWriter: &buf,
		EventSink:        fr,
	})
	if err != nil {
		t.Fatal(err)
	}

	phases := map[string]bool{}
	for _, ph := range sched.Stats.Phases {
		if ph.Duration < 0 {
			t.Errorf("phase %q has negative duration %v", ph.Name, ph.Duration)
		}
		phases[ph.Name] = true
	}
	for _, want := range []string{"oracle", "graph", "prepare", "search"} {
		if !phases[want] {
			t.Errorf("Stats.Phases missing %q (got %+v)", want, sched.Stats.Phases)
		}
	}

	events, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("EventTraceWriter got no events")
	}
	id := events[0].SolveID
	if id == 0 {
		t.Error("solve_id not stamped")
	}
	var sawSolution bool
	for i, ev := range events {
		if ev.SolveID != id {
			t.Fatalf("event %d solve_id %d != %d", i, ev.SolveID, id)
		}
		if ev.Ev == "solution" {
			sawSolution = true
			if math.Abs(ev.Cost-sched.TotalDegradation) > 1e-9 {
				t.Errorf("solution event cost %v != schedule cost %v", ev.Cost, sched.TotalDegradation)
			}
		}
	}
	if !sawSolution {
		t.Error("trace has no solution event")
	}
	if got := fr.Len(); got == 0 {
		t.Error("EventSink leg of the fan-out received nothing")
	}

	// The IP pipeline reports its own phase split and shares the sink.
	var ipBuf bytes.Buffer
	ipSched, err := Solve(inst, Options{Method: MethodIP, EventTraceWriter: &ipBuf})
	if err != nil {
		t.Fatal(err)
	}
	ipPhases := map[string]bool{}
	for _, ph := range ipSched.Stats.Phases {
		ipPhases[ph.Name] = true
	}
	for _, want := range []string{"oracle", "model", "search"} {
		if !ipPhases[want] {
			t.Errorf("IP Stats.Phases missing %q (got %+v)", want, ipSched.Stats.Phases)
		}
	}
	ipEvents, err := telemetry.ReadEvents(&ipBuf)
	if err != nil {
		t.Fatal(err)
	}
	var ipStart *telemetry.Event
	for i, ev := range ipEvents {
		if ev.Ev == "solve_start" {
			ipStart = &ipEvents[i]
			break
		}
	}
	if ipStart == nil || ipStart.Method != "ip:bnb-best+round" {
		t.Fatalf("IP trace has no ip solve_start: %+v", ipEvents)
	}
	if ipStart.SolveID == id {
		t.Error("distinct Solve calls shared a solve_id")
	}

	// Phases come for free: no trace configured still yields a breakdown.
	plain, err := Solve(inst, Options{Method: MethodHAStar})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Stats.Phases) == 0 {
		t.Error("Stats.Phases empty without telemetry configured")
	}
}
