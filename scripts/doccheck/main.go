// Command doccheck is the repository's documentation-coverage gate
// (wired into scripts/ci.sh). It walks every non-test Go file under the
// given roots and fails when
//
//   - a package has no package doc comment in any of its files, or
//   - an exported top-level identifier (type, function, method, or the
//     first name of a const/var group) has no doc comment.
//
// A doc comment on the enclosing GenDecl covers every name in the
// group, matching godoc's rendering. main packages are exempt from the
// exported-identifier rule (their exports are not part of any API) but
// still need a package comment.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	dirs := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "results") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var problems []string
	for _, dir := range sorted {
		problems = append(problems, checkDir(dir)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("doccheck: %s: %v", dir, err)}
	}

	var problems []string
	for name, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
				break
			}
		}
		if !hasPkgDoc {
			problems = append(problems,
				fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
		if name == "main" {
			continue
		}
		files := make([]string, 0, len(pkg.Files))
		for fname := range pkg.Files {
			files = append(files, fname)
		}
		sort.Strings(files)
		for _, fname := range files {
			problems = append(problems, checkFile(fset, pkg.Files[fname])...)
		}
	}
	return problems
}

func checkFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	undocumented := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Exported methods count only on exported receivers.
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			undocumented(d.Name.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			if d.Doc != nil {
				continue // group doc covers every spec
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil {
						undocumented(s.Name.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							undocumented(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
							break // one report per spec line
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether the method receiver's base type name
// is exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
