#!/usr/bin/env bash
# ci.sh — the full local gate: formatting, build, vet, doc coverage,
# tests, the allocation-budget guards (with telemetry off AND on), and a
# race pass over the concurrent search paths (worker pool + parallel
# solver).
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "ci: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Doc-coverage gate: every package needs a package comment, every
# exported identifier a doc comment (scripts/doccheck).
go run ./scripts/doccheck .

go test ./...

# The DESIGN.md §5c/§6 allocation budget: a dismissed child must stay
# allocation-free both without telemetry and with a live registry being
# flushed (run explicitly so a -run filter in the main suite can never
# silently drop the gate).
go test ./internal/astar/ -run 'TestDismissedChildStaysAllocationFree|TestDismissedChildAllocFreeWithTelemetry' -count=1

go test -race ./internal/astar/ -run 'Parallel|Worker'

echo "ci: all green" >&2
