#!/usr/bin/env bash
# ci.sh — the full local gate: formatting, build, vet, tests, and a race
# pass over the concurrent search paths (worker pool + parallel solver).
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "ci: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go test ./...
go test -race ./internal/astar/ -run 'Parallel|Worker'

echo "ci: all green" >&2
