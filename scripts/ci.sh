#!/usr/bin/env bash
# ci.sh — the full local gate: formatting, build, vet, doc coverage,
# tests, the allocation-budget guards (with telemetry off AND on), race
# passes over the concurrent search paths and the serving layer, the
# trace-invariant matrix (every producer's trace must pass coschedtrace
# check), the coschedd end-to-end serving gate, the restart-warm cache
# gate (SIGTERM + reboot over the same -cache-dir must keep the hit
# rate; a corrupt-tail segment must be skipped, not trusted), the
# open-loop loadgen + autoscaler gate, the two-replica chaos gate (kill
# one daemon mid-ladder under the fleet client), and the recorded
# benchmark gates.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "ci: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Doc-coverage gate: every package needs a package comment, every
# exported identifier a doc comment (scripts/doccheck).
go run ./scripts/doccheck .

go test ./...

# The DESIGN.md §5c/§6 allocation budget: a dismissed child must stay
# allocation-free without telemetry, with a live registry being flushed,
# and with the full tracing stack (event tracer + flight recorder +
# spans) attached (run explicitly so a -run filter in the main suite can
# never silently drop the gate).
go test ./internal/astar/ -run 'TestDismissedChildStaysAllocationFree|TestDismissedChildAllocFreeWithTelemetry|TestDismissedChildAllocFreeWithTracing' -count=1

# Race matrix over the concurrent search paths: the per-expansion worker
# crew, the work-stealing parallel engine (DESIGN.md §5d) and its
# striped dismissal table.
go test -race ./internal/astar/ -run 'Parallel|Worker|Striped'

# Serving-layer race pass: many SolveContext/SolveRobust calls sharing
# one Instance and memoized oracle (the coschedd usage pattern), plus
# the daemon engine (including pool resizes during active solves and
# drain), its caches, the open-loop load generator, the fleet client
# (retries/hedges/breakers against real servers behind the chaos
# proxy), and the chaos proxy itself under their own concurrent tests.
go test -race . -run TestConcurrentSolvesShareInstance -count=1
go test -race ./internal/server/ ./internal/solvecache/ ./internal/loadgen/ \
    ./internal/coschedclient/ ./internal/chaosproxy/ -count=1

# Trace-invariant matrix: generate a small trace from every producer
# (OA*, HA*-trimmed, beam, branch-and-bound, online) and replay each
# against its invariants; the summaries must render too.
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"; for p in "${coschedd_pid:-}" "${chaos_r1_pid:-}" "${chaos_r2_pid:-}"; do [[ -n "$p" ]] && kill -9 "$p" 2>/dev/null || true; done' EXIT
go run ./cmd/coschedcli -synthetic 12 -trace "$tracedir/oa.jsonl" > /dev/null
go run ./cmd/coschedcli -synthetic 24 -method hastar -trace "$tracedir/ha.jsonl" > /dev/null
go run ./cmd/coschedcli -synthetic 44 -method hastar -trace "$tracedir/beam.jsonl" > /dev/null
go run ./cmd/coschedcli -synthetic 8 -method ip -trace "$tracedir/ip.jsonl" > /dev/null
go run ./examples/onlinesim -trace "$tracedir/online.jsonl" > /dev/null
go run ./cmd/coschedtrace check "$tracedir"/*.jsonl > /dev/null
for f in "$tracedir"/*.jsonl; do
    # grep (not -q) drains the stream: -q's early exit would SIGPIPE the
    # renderer and trip pipefail.
    go run ./cmd/coschedtrace summary "$f" | grep '=== solve' > /dev/null || {
        echo "ci: coschedtrace summary produced no report for $f" >&2
        exit 1
    }
done
echo "ci: trace invariants hold for OA*, HA*, beam, IP and online traces" >&2

# Parallel-search trace gate: a 4-worker solve must record its worker
# count in the trace header, pass the (order-relaxed, totals-enforced)
# invariant replay, and match the sequential cost on the same instance.
go run ./cmd/coschedcli -synthetic 12 -parallel 4 -trace "$tracedir/par.jsonl" > "$tracedir/par.out"
go run ./cmd/coschedtrace check "$tracedir/par.jsonl" > /dev/null
go run ./cmd/coschedtrace summary "$tracedir/par.jsonl" | grep '4 expansion workers' > /dev/null || {
    echo "ci: parallel trace header does not record its worker count" >&2
    exit 1
}
seq_cost="$(go run ./cmd/coschedcli -synthetic 12 < /dev/null | grep -o 'total degradation [0-9.]*')"
par_cost="$(grep -o 'total degradation [0-9.]*' "$tracedir/par.out")"
[[ -n "$seq_cost" && "$seq_cost" == "$par_cost" ]] || {
    echo "ci: parallel cost '$par_cost' != sequential cost '$seq_cost'" >&2
    exit 1
}
echo "ci: 4-worker parallel solve traces clean at the sequential cost" >&2

# Robustness matrix: every method under an already-expired deadline must
# still return a valid degraded schedule promptly (the anytime
# guarantee), its trace must carry the abort event, and the degraded
# traces must pass the same invariant gate as completed ones.
for m in oastar hastar osvp ip pg brute; do
    out="$(go run ./cmd/coschedcli -synthetic 12 -method "$m" -deadline 1ns -trace "$tracedir/deg-$m.jsonl")"
    grep -q 'DEGRADED(' <<<"$out" || {
        echo "ci: method $m under an expired deadline did not report a degraded schedule" >&2
        exit 1
    }
    grep -q 'schedule over' <<<"$out" || {
        echo "ci: method $m under an expired deadline printed no schedule" >&2
        exit 1
    }
done
go run ./cmd/coschedtrace check "$tracedir"/deg-*.jsonl > /dev/null
# The fallback ladder under a tight-but-usable deadline must answer and
# report the rungs it walked. (Capture to a file rather than piping into
# grep -q: an early grep exit SIGPIPEs the still-printing writer, and
# pipefail turns that into a spurious gate failure.)
go run ./cmd/coschedcli -synthetic 16 -robust -deadline 200ms > "$tracedir/robust.out"
grep -q 'fallback ladder:' "$tracedir/robust.out" || {
    echo "ci: SolveRobust did not report its fallback ladder" >&2
    exit 1
}
echo "ci: every method degrades gracefully under an expired deadline" >&2

# Seeded fault-injection online run: crashes, evictions, placement
# failures and a noisy oracle must leave a causally consistent trace.
go run ./examples/onlinesim -faults -faultseed 1 -trace "$tracedir/online-faults.jsonl" > /dev/null
go run ./cmd/coschedtrace check "$tracedir/online-faults.jsonl" > /dev/null
echo "ci: fault-injected online simulation trace is causally consistent" >&2

# coschedd serving gate: boot the daemon on an ephemeral port, exercise
# solve + cache hit + batch + robust + queued-deadline rejection over
# HTTP, scrape the server.* Prometheus metrics, and verify a SIGTERM
# drain exits 0.
go build -o "$tracedir/coschedd" ./cmd/coschedd
"$tracedir/coschedd" -addr 127.0.0.1:0 -workers 1 > "$tracedir/coschedd.log" 2>&1 &
coschedd_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's#^coschedd: listening on http://##p' "$tracedir/coschedd.log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "ci: coschedd never printed its address" >&2; exit 1; }
curl -sf "http://$addr/healthz" > /dev/null

solve_req='{"synthetic": 8, "seed": 4, "method": "hastar"}'
curl -sf -d "$solve_req" "http://$addr/v1/solve" | grep -q '"cached":false' || {
    echo "ci: coschedd first solve was not a cache miss" >&2; exit 1; }
curl -sf -d "$solve_req" "http://$addr/v1/solve" | grep -q '"cached":true' || {
    echo "ci: coschedd repeated solve was not served from the cache" >&2; exit 1; }

batch='{"requests": [{"synthetic": 6, "method": "pg"}, {"synthetic": 6, "robust": true, "deadline_ms": 500}]}'
batch_out="$(curl -sf -d "$batch" "http://$addr/v1/batch")"
grep -q '"method":"robust"' <<<"$batch_out" || {
    echo "ci: coschedd batch did not run its robust item" >&2; exit 1; }
grep -q '"status":200.*"status":200' <<<"$batch_out" || {
    echo "ci: coschedd batch items did not both succeed" >&2; exit 1; }

# Deadline rejection: park the single worker on a deadline-bounded OA*
# (26 jobs cannot finish exactly in 1.5s), then queue a request whose
# 100ms deadline must expire while it waits — a 504.
curl -s -d '{"synthetic": 26, "method": "oastar", "deadline_ms": 1500, "no_cache": true}' \
    "http://$addr/v1/solve" > /dev/null &
park_pid=$!
sleep 0.3
code="$(curl -s -o /dev/null -w '%{http_code}' \
    -d '{"synthetic": 4, "method": "pg", "deadline_ms": 100, "no_cache": true}' \
    "http://$addr/v1/solve")"
[[ "$code" == "504" ]] || {
    echo "ci: queued past-deadline request returned $code; want 504" >&2; exit 1; }
wait "$park_pid"

metrics="$(curl -sf "http://$addr/metrics")"
grep -Eq '^cosched_server_cache_hits [1-9]' <<<"$metrics" || {
    echo "ci: coschedd /metrics shows no cache hits" >&2; exit 1; }
grep -Eq '^cosched_server_rejected_deadline [1-9]' <<<"$metrics" || {
    echo "ci: coschedd /metrics shows no deadline rejection" >&2; exit 1; }

kill -TERM "$coschedd_pid"
wait "$coschedd_pid" || {
    echo "ci: coschedd did not drain cleanly on SIGTERM" >&2; exit 1; }
grep -q 'drained clean' "$tracedir/coschedd.log" || {
    echo "ci: coschedd log is missing the drain summary" >&2; exit 1; }
echo "ci: coschedd serves, caches, rejects expired work and drains clean" >&2

# Restart-warm cache gate: boot coschedd over a spill directory, warm
# five fingerprints, SIGTERM it, reboot over the same -cache-dir and
# require (a) the boot log reports the replay, (b) the first repeated
# request is already a cache hit, (c) /metrics counts the replay, and
# (d) the /debug/trace cache timeline renders the replay/store history.
cache_dir="$tracedir/cache-spill"
"$tracedir/coschedd" -addr 127.0.0.1:0 -workers 1 -cache-dir "$cache_dir" \
    > "$tracedir/coschedd-warm.log" 2>&1 &
coschedd_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's#^coschedd: listening on http://##p' "$tracedir/coschedd-warm.log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "ci: spill coschedd never printed its address" >&2; exit 1; }
for seed in 1 2 3 4 5; do
    curl -sf -d "{\"synthetic\": 8, \"seed\": $seed, \"method\": \"hastar\"}" \
        "http://$addr/v1/solve" > /dev/null
done
kill -TERM "$coschedd_pid"
wait "$coschedd_pid" || {
    echo "ci: spill coschedd did not drain cleanly" >&2; exit 1; }

"$tracedir/coschedd" -addr 127.0.0.1:0 -workers 1 -cache-dir "$cache_dir" \
    > "$tracedir/coschedd-warm2.log" 2>&1 &
coschedd_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's#^coschedd: listening on http://##p' "$tracedir/coschedd-warm2.log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "ci: rebooted spill coschedd never printed its address" >&2; exit 1; }
grep -Eq 'cache warm: replayed [1-9][0-9]* records' "$tracedir/coschedd-warm2.log" || {
    echo "ci: rebooted coschedd did not report a cache replay at boot" >&2; exit 1; }
curl -sf -d '{"synthetic": 8, "seed": 3, "method": "hastar"}' "http://$addr/v1/solve" \
    | grep -q '"cached":true' || {
    echo "ci: first repeated request after restart was not a cache hit" >&2; exit 1; }
metrics="$(curl -sf "http://$addr/metrics")"
grep -Eq '^cosched_server_cache_replayed [1-9]' <<<"$metrics" || {
    echo "ci: rebooted coschedd /metrics shows no replayed cache records" >&2; exit 1; }
grep -Eq '^cosched_server_cache_bytes [1-9]' <<<"$metrics" || {
    echo "ci: rebooted coschedd /metrics shows an empty cache after replay" >&2; exit 1; }
curl -sf "http://$addr/debug/trace" | go run ./cmd/coschedtrace cache - \
    > "$tracedir/cache-timeline.out"
grep -q 'cache timeline' "$tracedir/cache-timeline.out" || {
    echo "ci: coschedtrace cache did not render the daemon's cache timeline" >&2; exit 1; }
grep -q 'replay' "$tracedir/cache-timeline.out" || {
    echo "ci: cache timeline is missing the boot replay event" >&2; exit 1; }
kill -TERM "$coschedd_pid"
wait "$coschedd_pid" || {
    echo "ci: rebooted spill coschedd did not drain cleanly" >&2; exit 1; }
echo "ci: coschedd restarts warm from its spill directory" >&2

# Corrupt-tail gate: tear the last spill segment mid-record (a crash
# between write and close). The daemon must boot clean, replay the
# intact prefix, report the skip, and still serve the surviving
# fingerprints from cache.
last_seg="$(ls "$cache_dir"/cache-*.seg | sort | tail -n 1)"
[[ -n "$last_seg" ]] || { echo "ci: spill directory holds no segments to corrupt" >&2; exit 1; }
truncate -s -5 "$last_seg"
"$tracedir/coschedd" -addr 127.0.0.1:0 -workers 1 -cache-dir "$cache_dir" \
    > "$tracedir/coschedd-torn.log" 2>&1 &
coschedd_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's#^coschedd: listening on http://##p' "$tracedir/coschedd-torn.log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "ci: torn-tail coschedd never booted" >&2; exit 1; }
curl -sf "http://$addr/healthz" > /dev/null || {
    echo "ci: torn-tail coschedd is not healthy" >&2; exit 1; }
grep -Eq 'cache warm: replayed [0-9]+ records \([1-9][0-9]* skipped\)' "$tracedir/coschedd-torn.log" || {
    echo "ci: torn-tail coschedd did not log the skipped record" >&2; exit 1; }
grep -Eq 'cache warm: replayed [1-9][0-9]* records' "$tracedir/coschedd-torn.log" || {
    echo "ci: torn-tail coschedd replayed nothing from the intact prefix" >&2; exit 1; }
kill -TERM "$coschedd_pid"
wait "$coschedd_pid" || {
    echo "ci: torn-tail coschedd did not drain cleanly" >&2; exit 1; }
echo "ci: coschedd tolerates a crash-torn spill segment" >&2

# Request-observability gate: boot coschedd with a JSON access log,
# fire a warm/cold/rejected mix with caller-supplied request IDs, and
# require: the ID echoed on the response header and body, every
# access-log line a JSON object with the full field set and each ID in
# exactly one line (scripts/obscheck), the request events joinable to
# their solve timeline in /debug/trace via `coschedtrace requests`, the
# live /debug/requests ring showing the request, and the RED/SLO/
# in-flight series in /metrics.
"$tracedir/coschedd" -addr 127.0.0.1:0 -workers 1 -access-log "$tracedir/access.log" \
    > "$tracedir/coschedd-obs.log" 2>&1 &
coschedd_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's#^coschedd: listening on http://##p' "$tracedir/coschedd-obs.log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "ci: observability coschedd never printed its address" >&2; exit 1; }

obs_req='{"synthetic": 8, "seed": 9, "method": "hastar"}'
echo_id="$(curl -sf -D - -o "$tracedir/obs-cold.json" -H 'X-Request-ID: ci-obs-cold' \
    -d "$obs_req" "http://$addr/v1/solve" | grep -i '^x-request-id:' | tr -d '\r' | awk '{print $2}')"
[[ "$echo_id" == "ci-obs-cold" ]] || {
    echo "ci: X-Request-ID not echoed on the response header (got '$echo_id')" >&2; exit 1; }
grep -q '"request_id":"ci-obs-cold"' "$tracedir/obs-cold.json" || {
    echo "ci: solve response body does not carry its request id" >&2; exit 1; }
curl -sf -H 'X-Request-ID: ci-obs-warm' -d "$obs_req" "http://$addr/v1/solve" | grep -q '"cached":true' || {
    echo "ci: warm observability request was not served from the cache" >&2; exit 1; }
code="$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Request-ID: ci-obs-bad' \
    -d '{}' "http://$addr/v1/solve")"
[[ "$code" == "400" ]] || { echo "ci: workload-less request returned $code; want 400" >&2; exit 1; }

go run ./scripts/obscheck -log "$tracedir/access.log" ci-obs-cold ci-obs-warm ci-obs-bad

curl -sf "http://$addr/debug/requests" | grep -q 'ci-obs-cold' || {
    echo "ci: /debug/requests does not show the request" >&2; exit 1; }
curl -sf "http://$addr/debug/trace" > "$tracedir/obs-trace.jsonl"
go run ./cmd/coschedtrace requests "$tracedir/obs-trace.jsonl" > "$tracedir/obs-requests.out"
grep -q 'ci-obs-cold' "$tracedir/obs-requests.out" || {
    echo "ci: coschedtrace requests does not render the traced request" >&2; exit 1; }
solve_id="$(grep -o '"solve_id":[0-9]*' "$tracedir/obs-cold.json" | head -1 | cut -d: -f2)"
[[ -n "$solve_id" && "$solve_id" != "0" ]] || {
    echo "ci: solve response carries no solve_id join key" >&2; exit 1; }
go run ./cmd/coschedtrace summary -solve "$solve_id" "$tracedir/obs-trace.jsonl" > "$tracedir/obs-summary.out"
grep -q '=== solve' "$tracedir/obs-summary.out" || {
    echo "ci: request's solve_id $solve_id joins no solve timeline in the trace" >&2; exit 1; }

obs_metrics="$(curl -sf "http://$addr/metrics")"
for series in cosched_server_requests_inflight cosched_server_http_requests_v1_solve \
    cosched_server_http_duration_ms_v1_solve_count cosched_server_slo_availability_good \
    cosched_server_slo_latency_burn_fast; do
    grep -q "^$series" <<<"$obs_metrics" || {
        echo "ci: /metrics is missing the $series series" >&2; exit 1; }
done

kill -TERM "$coschedd_pid"
wait "$coschedd_pid" || { echo "ci: observability coschedd did not drain cleanly" >&2; exit 1; }
coschedd_pid=""
echo "ci: request observability — IDs echoed, access log validates, trace joins, metrics present" >&2

# Serving benchmark + autoscaler gate: boot coschedd with a 1..4
# autoscaling pool and aggressive scale knobs, drive a two-rung
# open-loop coschedload ladder sized to saturate one worker (cold
# hastar synthetic-20 solves run ~50-100ms on this class of builder),
# and require: a valid BENCH_serving.json, at least one autoscale grow
# in /metrics, the pool shrinking back once the ladder goes idle, a
# renderable scaling timeline from /debug/trace, and a clean SIGTERM
# drain.
go build -o "$tracedir/coschedload" ./cmd/coschedload
"$tracedir/coschedd" -addr 127.0.0.1:0 -workers-min 1 -workers-max 4 \
    -scale-interval 200ms -scale-up-p90 5ms -scale-idle 1500ms -scale-cooldown 400ms \
    > "$tracedir/coschedd-scale.log" 2>&1 &
coschedd_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's#^coschedd: listening on http://##p' "$tracedir/coschedd-scale.log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "ci: autoscaling coschedd never printed its address" >&2; exit 1; }
"$tracedir/coschedload" -addr "http://$addr" -rungs 15x3s,25x3s -synthetic 20 -warm 0.3 \
    -out "$tracedir/BENCH_serving.json" > "$tracedir/coschedload.out"
"$tracedir/coschedload" -check "$tracedir/BENCH_serving.json" > /dev/null
grep -Eq '^cosched_server_autoscale_grow [1-9]' <<<"$(curl -sf "http://$addr/metrics")" || {
    echo "ci: autoscaler never grew the pool under the ladder" >&2; exit 1; }
shrunk=""
for _ in $(seq 1 40); do
    if curl -sf "http://$addr/metrics" | grep -Eq '^cosched_server_autoscale_shrink [1-9]'; then
        shrunk=yes; break
    fi
    sleep 0.25
done
[[ -n "$shrunk" ]] || { echo "ci: autoscaler never shrank after the ladder went idle" >&2; exit 1; }
curl -sf "http://$addr/debug/trace" | go run ./cmd/coschedtrace scaling - > "$tracedir/scaling.out"
grep -q 'autoscale timeline' "$tracedir/scaling.out" || {
    echo "ci: /debug/trace yields no autoscale timeline" >&2; exit 1; }
kill -TERM "$coschedd_pid"
wait "$coschedd_pid" || { echo "ci: autoscaling coschedd did not drain cleanly" >&2; exit 1; }
coschedd_pid=""
echo "ci: autoscaler grew under load, shrank when idle, BENCH_serving.json validates" >&2

# Chaos fleet gate: two replica daemons behind the fault-tolerant fleet
# client (coschedload -replicas), with one replica SIGKILLed mid-ladder
# and revived on the same port. The run must hold a sub-5% non-429
# error rate and the caller deadline (+1s grace for retries and
# measurement) — coschedload itself enforces both and exits non-zero on
# a breach. On top of that: the circuit breaker must open while the
# replica is down and half-open after it returns, a failed-over request
# must keep one request ID across attempt-numbered client events, that
# ID must appear with status 200 in exactly one replica's access log
# (no duplicate side effects), and `coschedtrace fleet` must render the
# client trace.
"$tracedir/coschedd" -addr 127.0.0.1:0 -workers 2 -replica-id r-one \
    -access-log "$tracedir/chaos-r1.access" > "$tracedir/chaos-r1.log" 2>&1 &
chaos_r1_pid=$!
r1_addr=""
for _ in $(seq 1 50); do
    r1_addr="$(sed -n 's#^coschedd: listening on http://##p' "$tracedir/chaos-r1.log")"
    [[ -n "$r1_addr" ]] && break
    sleep 0.1
done
[[ -n "$r1_addr" ]] || { echo "ci: chaos replica r-one never printed its address" >&2; exit 1; }
"$tracedir/coschedd" -addr 127.0.0.1:0 -workers 2 -replica-id r-two \
    -access-log "$tracedir/chaos-r2.access" > "$tracedir/chaos-r2.log" 2>&1 &
chaos_r2_pid=$!
r2_addr=""
for _ in $(seq 1 50); do
    r2_addr="$(sed -n 's#^coschedd: listening on http://##p' "$tracedir/chaos-r2.log")"
    [[ -n "$r2_addr" ]] && break
    sleep 0.1
done
[[ -n "$r2_addr" ]] || { echo "ci: chaos replica r-two never printed its address" >&2; exit 1; }

"$tracedir/coschedload" -replicas "http://$r1_addr,http://$r2_addr" \
    -rungs 15x3s,15x3s,15x3s -synthetic 6 -deadline-ms 2000 \
    -client-trace "$tracedir/chaos-client.jsonl" \
    -max-error-rate 0.05 -assert-deadline 1s \
    -out "$tracedir/BENCH_chaos.json" > "$tracedir/chaos-load.out" 2>&1 &
chaos_load_pid=$!
# Mid-rung, hard-kill r-two. Three seconds of outage at 15 rps routes
# enough of the ring's r-two half into connection failures to trip the
# breaker (5-sample minimum) and ride out its 2s open window; the
# revival on the same port then gives the half-open probe a healthy
# backend while the ladder is still firing.
sleep 2
kill -9 "$chaos_r2_pid" 2>/dev/null || true
wait "$chaos_r2_pid" 2>/dev/null || true
sleep 3
"$tracedir/coschedd" -addr "$r2_addr" -workers 2 -replica-id r-two \
    -access-log "$tracedir/chaos-r2.access" >> "$tracedir/chaos-r2.log" 2>&1 &
chaos_r2_pid=$!
wait "$chaos_load_pid" || {
    echo "ci: chaos ladder failed its error-rate or deadline gate:" >&2
    cat "$tracedir/chaos-load.out" >&2
    exit 1
}
"$tracedir/coschedload" -check "$tracedir/BENCH_chaos.json" > /dev/null

fleet_line="$(grep '^coschedload: fleet ' "$tracedir/chaos-load.out")"
echo "ci: $fleet_line" >&2
opens="$(grep -o 'breaker_opens=[0-9]*' <<<"$fleet_line" | cut -d= -f2)"
half_opens="$(grep -o 'breaker_half_opens=[0-9]*' <<<"$fleet_line" | cut -d= -f2)"
failovers="$(grep -o 'failovers=[0-9]*' <<<"$fleet_line" | cut -d= -f2)"
[[ "$opens" -ge 1 ]] || {
    echo "ci: breaker never opened while a replica was down" >&2; exit 1; }
[[ "$half_opens" -ge 1 ]] || {
    echo "ci: breaker never half-opened after the replica returned" >&2; exit 1; }
[[ "$failovers" -ge 1 ]] || {
    echo "ci: no request failed over to the surviving replica" >&2; exit 1; }

# Request-identity continuity and no duplicate side effects: take a
# retried (non-hedged) request from the client trace, confirm its
# attempts are numbered from 1 under one ID, and confirm exactly one
# 200 access-log line across both replicas carries that ID.
dup_id="$(grep '"ev":"client_request"' "$tracedir/chaos-client.jsonl" \
    | grep -v '"hedged":true' | grep -E '"attempt":[2-9]' | head -1 \
    | sed -n 's/.*"req_id":"\([^"]*\)".*/\1/p')"
[[ -n "$dup_id" ]] || {
    echo "ci: client trace has no multi-attempt request despite the replica kill" >&2; exit 1; }
grep '"ev":"client_attempt"' "$tracedir/chaos-client.jsonl" \
    | grep "\"req_id\":\"$dup_id\"" | grep -q '"attempt":1' || {
    echo "ci: retried request $dup_id has no attempt-1 client event" >&2; exit 1; }
ok_lines="$(cat "$tracedir/chaos-r1.access" "$tracedir/chaos-r2.access" \
    | grep "\"req_id\":\"$dup_id\"" | grep -c '"status":200' || true)"
[[ "$ok_lines" == "1" ]] || {
    echo "ci: request $dup_id has $ok_lines status-200 access-log lines; want exactly 1" >&2; exit 1; }

go run ./cmd/coschedtrace fleet "$tracedir/chaos-client.jsonl" > "$tracedir/chaos-fleet.out"
grep -q '=== fleet' "$tracedir/chaos-fleet.out" || {
    echo "ci: coschedtrace fleet produced no report" >&2; exit 1; }

kill -TERM "$chaos_r1_pid" "$chaos_r2_pid"
wait "$chaos_r1_pid" || { echo "ci: chaos replica r-one did not drain cleanly" >&2; exit 1; }
wait "$chaos_r2_pid" || { echo "ci: chaos replica r-two did not drain cleanly" >&2; exit 1; }
chaos_r1_pid=""
chaos_r2_pid=""
echo "ci: chaos gate — replica killed and revived mid-ladder, breaker opened ($opens) and recovered ($half_opens), $failovers failovers, no duplicate side effects" >&2

# The recorded benchmark gates (no bench run — validate the committed
# BENCH_astar.json and BENCH_serving.json).
scripts/benchdiff.sh --check
scripts/servebench.sh --check

echo "ci: all green" >&2
