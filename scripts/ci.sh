#!/usr/bin/env bash
# ci.sh — the full local gate: formatting, build, vet, doc coverage,
# tests, the allocation-budget guards (with telemetry off AND on), a
# race pass over the concurrent search paths (worker pool + parallel
# solver), the trace-invariant matrix (every producer's trace must pass
# coschedtrace check), and the recorded benchmark gate.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "ci: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Doc-coverage gate: every package needs a package comment, every
# exported identifier a doc comment (scripts/doccheck).
go run ./scripts/doccheck .

go test ./...

# The DESIGN.md §5c/§6 allocation budget: a dismissed child must stay
# allocation-free without telemetry, with a live registry being flushed,
# and with the full tracing stack (event tracer + flight recorder +
# spans) attached (run explicitly so a -run filter in the main suite can
# never silently drop the gate).
go test ./internal/astar/ -run 'TestDismissedChildStaysAllocationFree|TestDismissedChildAllocFreeWithTelemetry|TestDismissedChildAllocFreeWithTracing' -count=1

go test -race ./internal/astar/ -run 'Parallel|Worker'

# Trace-invariant matrix: generate a small trace from every producer
# (OA*, HA*-trimmed, beam, branch-and-bound, online) and replay each
# against its invariants; the summaries must render too.
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/coschedcli -synthetic 12 -trace "$tracedir/oa.jsonl" > /dev/null
go run ./cmd/coschedcli -synthetic 24 -method hastar -trace "$tracedir/ha.jsonl" > /dev/null
go run ./cmd/coschedcli -synthetic 44 -method hastar -trace "$tracedir/beam.jsonl" > /dev/null
go run ./cmd/coschedcli -synthetic 8 -method ip -trace "$tracedir/ip.jsonl" > /dev/null
go run ./examples/onlinesim -trace "$tracedir/online.jsonl" > /dev/null
go run ./cmd/coschedtrace check "$tracedir"/*.jsonl > /dev/null
for f in "$tracedir"/*.jsonl; do
    # grep (not -q) drains the stream: -q's early exit would SIGPIPE the
    # renderer and trip pipefail.
    go run ./cmd/coschedtrace summary "$f" | grep '=== solve' > /dev/null || {
        echo "ci: coschedtrace summary produced no report for $f" >&2
        exit 1
    }
done
echo "ci: trace invariants hold for OA*, HA*, beam, IP and online traces" >&2

# Robustness matrix: every method under an already-expired deadline must
# still return a valid degraded schedule promptly (the anytime
# guarantee), its trace must carry the abort event, and the degraded
# traces must pass the same invariant gate as completed ones.
for m in oastar hastar osvp ip pg brute; do
    out="$(go run ./cmd/coschedcli -synthetic 12 -method "$m" -deadline 1ns -trace "$tracedir/deg-$m.jsonl")"
    grep -q 'DEGRADED(' <<<"$out" || {
        echo "ci: method $m under an expired deadline did not report a degraded schedule" >&2
        exit 1
    }
    grep -q 'schedule over' <<<"$out" || {
        echo "ci: method $m under an expired deadline printed no schedule" >&2
        exit 1
    }
done
go run ./cmd/coschedtrace check "$tracedir"/deg-*.jsonl > /dev/null
# The fallback ladder under a tight-but-usable deadline must answer and
# report the rungs it walked.
go run ./cmd/coschedcli -synthetic 16 -robust -deadline 200ms | grep -q 'fallback ladder:' || {
    echo "ci: SolveRobust did not report its fallback ladder" >&2
    exit 1
}
echo "ci: every method degrades gracefully under an expired deadline" >&2

# Seeded fault-injection online run: crashes, evictions, placement
# failures and a noisy oracle must leave a causally consistent trace.
go run ./examples/onlinesim -faults -faultseed 1 -trace "$tracedir/online-faults.jsonl" > /dev/null
go run ./cmd/coschedtrace check "$tracedir/online-faults.jsonl" > /dev/null
echo "ci: fault-injected online simulation trace is causally consistent" >&2

# The recorded benchmark gate (no bench run — validates BENCH_astar.json).
scripts/benchdiff.sh --check

echo "ci: all green" >&2
