#!/bin/sh
# Reproduce everything: build, verify, regenerate every table/figure and
# ablation, and leave the reports in ./results.
set -e

echo "== build =="
go build ./...
go vet ./...

echo "== tests =="
go test ./... 2>&1 | tee test_output.txt

echo "== tables, figures, ablations (full mode; see -quick for a fast pass) =="
go run ./cmd/experiments -exp all -out results

echo "== benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

echo "done; reports in ./results, logs in test_output.txt / bench_output.txt"
