// Command obscheck validates a coschedd structured access log for the
// CI observability gate: every line must parse as a JSON object
// carrying the full request-lifecycle field set, and each request ID
// named on the command line must appear in exactly one line. jq-free on
// purpose — the gate runs on bare builders.
//
// Usage:
//
//	obscheck -log access.log [id ...]
//
// Exit status 0 when the log validates and every named ID appears once.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// requiredFields is the access-log contract from SERVING.md: present on
// every line, whatever the request's outcome (zeroes for requests that
// never reached a worker).
var requiredFields = []string{
	"req_id", "route", "status",
	"queue_ms", "solve_ms", "encode_ms", "total_ms",
	"cache", "degraded", "abort", "parallelism", "fp", "solve_id",
}

func main() {
	logPath := flag.String("log", "", "access-log file to validate")
	flag.Parse()
	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -log is required")
		os.Exit(2)
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
	defer f.Close() //nolint:errcheck

	seen := make(map[string]int)
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lines++
		var entry map[string]any
		if err := json.Unmarshal(line, &entry); err != nil {
			fail("line %d is not JSON: %v\n%s", lines, err, line)
		}
		for _, field := range requiredFields {
			if _, ok := entry[field]; !ok {
				fail("line %d missing field %q: %s", lines, field, line)
			}
		}
		if id, _ := entry["req_id"].(string); id != "" {
			seen[id]++
		}
	}
	if err := sc.Err(); err != nil {
		fail("read %s: %v", *logPath, err)
	}
	if lines == 0 {
		fail("%s has no access-log lines", *logPath)
	}
	for _, id := range flag.Args() {
		if n := seen[id]; n != 1 {
			fail("request id %q appears in %d lines, want exactly 1", id, n)
		}
	}
	fmt.Printf("obscheck: %d lines validate, %d ids matched\n", lines, len(flag.Args()))
}

// fail prints the complaint and exits non-zero.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
	os.Exit(1)
}
