#!/usr/bin/env bash
# benchdiff.sh — run the solver benchmarks (Table4, Fig9, Fig13) against the
# working tree, compare allocs/op and ns/op with a recorded baseline, and
# emit BENCH_astar.json at the repo root.
#
# Usage:
#   scripts/benchdiff.sh                 # run fresh, compare vs bench/baseline_astar.txt
#   scripts/benchdiff.sh old.txt         # compare a fresh run vs old.txt
#   scripts/benchdiff.sh old.txt new.txt # compare two recorded runs (no bench run)
#   scripts/benchdiff.sh --check         # re-validate the committed BENCH_astar.json
#                                        # gate without running anything (CI mode)
#   scripts/benchdiff.sh --workers       # sweep the parallel search engine
#                                        # (COSCHED_PARALLELISM=1/2/4/8) over the
#                                        # search-bound benchmarks and emit
#                                        # BENCH_parallel.json with the measuring
#                                        # environment recorded (speedup is bounded
#                                        # by the recorded cpu count; on a 1-CPU
#                                        # box the sweep measures coordination
#                                        # overhead, not speedup)
#
# Baselines are plain `go test -bench` output; record one with:
#   go test -run XXX -bench 'Fig9|Fig13|Table4' -benchmem -benchtime=1x . > bench/baseline_astar.txt
#
# Note: -benchtime=1x makes the comparison deterministic per run but noisy
# in ns/op; allocs/op is exact (the GC statistics are not sampled), which
# is why the acceptance gate reads allocs_reduction.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--check" ]]; then
    if [[ ! -f BENCH_astar.json ]]; then
        echo "benchdiff: --check: BENCH_astar.json not found (run scripts/benchdiff.sh first)" >&2
        exit 1
    fi
    fail=0
    seen=0
    while IFS= read -r line; do
        case "$line" in
            *'"allocs_reduction":'*)
                seen=1
                v="${line##*: }"; v="${v%,}"
                awk -v v="$v" 'BEGIN { exit (v >= 2.0) ? 0 : 1 }' || fail=1
                ;;
        esac
    done < BENCH_astar.json
    if [[ "$seen" -eq 0 || "$fail" -ne 0 ]]; then
        echo "benchdiff: --check FAIL — BENCH_astar.json is empty or under the 2x allocs/op gate" >&2
        exit 1
    fi
    echo "benchdiff: --check ok — recorded gate holds (>= 2x allocs/op reduction)" >&2
    exit 0
fi

if [[ "${1:-}" == "--workers" ]]; then
    sweep="${2:-1 2 4 8}"
    outdir="$(mktemp -d)"
    trap 'rm -rf "$outdir"' EXIT
    for p in $sweep; do
        echo "benchdiff: --workers: COSCHED_PARALLELISM=$p ..." >&2
        COSCHED_PARALLELISM="$p" go test -run XXX -bench 'Fig9|Fig13|Table4' \
            -benchmem -benchtime=1x . | tee "$outdir/w$p.txt" >&2
    done
    {
        printf '{\n'
        printf '  "benchmark_cmd": "COSCHED_PARALLELISM=<w> go test -run XXX -bench %s -benchmem -benchtime=1x .",\n' "'Fig9|Fig13|Table4'"
        printf '  "environment": {\n'
        printf '    "cpus": %s,\n' "$(nproc)"
        printf '    "gomaxprocs": %s,\n' "${GOMAXPROCS:-$(nproc)}"
        printf '    "go": "%s",\n' "$(go env GOVERSION)"
        printf '    "os_arch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
        printf '    "note": "speedup is bounded by cpus; at cpus=1 the sweep measures parallel-engine coordination overhead (shard locks, steals, termination scans), so the gate is the overhead staying small, not a speedup"\n'
        printf '  },\n'
        printf '  "workers": {\n'
        first_p=1
        for p in $sweep; do
            [[ "$first_p" -eq 1 ]] || printf ',\n'
            first_p=0
            printf '    "%s": {\n' "$p"
            awk '
                /^Benchmark/ {
                    n = split($0, parts, /[ \t]+/)
                    name = parts[1]; sub(/-[0-9]+$/, "", name)
                    ns = b = a = "0"
                    for (i = 2; i <= n; i++) {
                        if (parts[i] == "ns/op")     ns = parts[i-1]
                        if (parts[i] == "B/op")      b  = parts[i-1]
                        if (parts[i] == "allocs/op") a  = parts[i-1]
                    }
                    rows[++count] = sprintf("      \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", name, ns, b, a)
                }
                END {
                    for (i = 1; i <= count; i++)
                        printf "%s%s\n", rows[i], (i < count) ? "," : ""
                }' "$outdir/w$p.txt"
            printf '    }'
        done
        printf '\n  }\n}\n'
    } > BENCH_parallel.json
    echo "benchdiff: wrote BENCH_parallel.json" >&2
    exit 0
fi

OLD="${1:-bench/baseline_astar.txt}"
NEW="${2:-}"

if [[ ! -f "$OLD" ]]; then
    echo "benchdiff: baseline $OLD not found" >&2
    exit 1
fi

if [[ -z "$NEW" ]]; then
    NEW="$(mktemp)"
    trap 'rm -f "$NEW"' EXIT
    echo "benchdiff: running solver benchmarks (several minutes: Fig9 is a full sweep)..." >&2
    go test -run XXX -bench 'Fig9|Fig13|Table4' -benchmem -benchtime=1x . | tee "$NEW" >&2
fi

awk -v old_file="$OLD" -v new_file="$NEW" '
function parse(file, dest,    line, n, parts, name, i) {
    while ((getline line < file) > 0) {
        if (line !~ /^Benchmark/) continue
        n = split(line, parts, /[ \t]+/)
        name = parts[1]
        sub(/-[0-9]+$/, "", name)
        for (i = 2; i <= n; i++) {
            if (parts[i] == "ns/op")     dest[name, "ns"] = parts[i-1]
            if (parts[i] == "B/op")      dest[name, "b"]  = parts[i-1]
            if (parts[i] == "allocs/op") dest[name, "a"]  = parts[i-1]
        }
        dest[name] = 1
    }
    close(file)
}
BEGIN {
    parse(old_file, old)
    parse(new_file, new)
    printf "{\n"
    printf "  \"benchmark_cmd\": \"go test -run XXX -bench '"'"'Fig9|Fig13|Table4'"'"' -benchmem -benchtime=1x .\",\n"
    printf "  \"baseline_file\": \"%s\",\n", old_file
    printf "  \"gate\": \"allocs_reduction >= 2.0 on every solver benchmark\",\n"
    printf "  \"benchmarks\": {\n"
    count = 0
    for (name in new) {
        if (index(name, SUBSEP) > 0) continue
        if (!(name in old)) continue
        names[++count] = name
    }
    # stable order
    for (i = 1; i <= count; i++)
        for (j = i + 1; j <= count; j++)
            if (names[j] < names[i]) { t = names[i]; names[i] = names[j]; names[j] = t }
    for (i = 1; i <= count; i++) {
        name = names[i]
        ar = (new[name, "a"] > 0) ? old[name, "a"] / new[name, "a"] : 0
        tr = (new[name, "ns"] > 0) ? old[name, "ns"] / new[name, "ns"] : 0
        printf "    \"%s\": {\n", name
        printf "      \"old\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n", old[name, "ns"], old[name, "b"], old[name, "a"]
        printf "      \"new\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n", new[name, "ns"], new[name, "b"], new[name, "a"]
        printf "      \"allocs_reduction\": %.2f,\n", ar
        printf "      \"speedup\": %.2f\n", tr
        printf "    }%s\n", (i < count) ? "," : ""
    }
    printf "  }\n}\n"
}' > BENCH_astar.json

echo "benchdiff: wrote BENCH_astar.json" >&2
fail=0
while IFS= read -r line; do
    case "$line" in
        *'"allocs_reduction":'*)
            v="${line##*: }"; v="${v%,}"
            awk -v v="$v" 'BEGIN { exit (v >= 2.0) ? 0 : 1 }' || fail=1
            ;;
    esac
done < BENCH_astar.json
if [[ "$fail" -ne 0 ]]; then
    echo "benchdiff: FAIL — a solver benchmark is under the 2x allocs/op gate" >&2
    exit 1
fi
echo "benchdiff: all solver benchmarks >= 2x allocs/op reduction" >&2
