#!/usr/bin/env bash
# servebench.sh — regenerate BENCH_serving.json, the committed serving
# benchmark (methodology in BENCHMARKS.md): coschedload boots an
# in-process coschedd with a 1..4 autoscaling worker pool and drives the
# standard two-rung open-loop ladder, sized so cold hastar solves
# saturate one worker on the single-CPU CI builder and the autoscaler
# has real queue delay to react to. Pass --check to validate the
# committed file without running any load (the CI mode).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--check" ]]; then
    go run ./cmd/coschedload -check BENCH_serving.json
    exit 0
fi

go run ./cmd/coschedload \
    -rungs 15x3s,25x3s -synthetic 20 -method hastar -warm 0.3 -pool 8 -seed 1 \
    -workers-min 1 -workers-max 4 -scale-interval 200ms -scale-up-p90 5ms \
    -note "single-CPU builder: the ladder saturates one worker, so latency measures queueing + solve time and extra workers relieve queue delay, not compute" \
    -out BENCH_serving.json
go run ./cmd/coschedload -check BENCH_serving.json
