package cosched

import (
	"fmt"
	"strings"
)

// ParseMethod resolves a method name ("oastar", "hastar", "ip", "osvp",
// "pg", "brute" and common aliases, case-insensitively) to its Method.
// It is the parser behind cmd/coschedcli's -method flag and the serving
// daemon's request field.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(s) {
	case "oastar", "oa*", "oa":
		return MethodOAStar, nil
	case "hastar", "ha*", "ha":
		return MethodHAStar, nil
	case "ip":
		return MethodIP, nil
	case "osvp", "o-svp":
		return MethodOSVP, nil
	case "pg":
		return MethodPG, nil
	case "brute", "bruteforce", "bf":
		return MethodBruteForce, nil
	default:
		return 0, fmt.Errorf("cosched: unknown method %q", s)
	}
}

// ParseAccounting resolves an accounting name ("se", "pe", "pc",
// case-insensitively) to its Accounting mode.
func ParseAccounting(s string) (Accounting, error) {
	switch strings.ToLower(s) {
	case "se":
		return AccountSE, nil
	case "pe":
		return AccountPE, nil
	case "pc":
		return AccountPC, nil
	default:
		return 0, fmt.Errorf("cosched: unknown accounting %q (se, pe, pc)", s)
	}
}

// ParseMachineKind resolves a machine-class name ("dual", "quad",
// "8core" and common aliases, case-insensitively) to its MachineKind.
func ParseMachineKind(s string) (MachineKind, error) {
	switch strings.ToLower(s) {
	case "dual", "dual-core", "2":
		return DualCore, nil
	case "quad", "quad-core", "4":
		return QuadCore, nil
	case "8core", "8-core", "eight", "8":
		return EightCore, nil
	default:
		return 0, fmt.Errorf("cosched: unknown machine %q (dual, quad, 8core)", s)
	}
}
