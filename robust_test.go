package cosched

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"cosched/internal/telemetry"
)

// validGroups fails the test unless the schedule is a partition of
// processes 1..n with no machine over u cores.
func validGroups(t *testing.T, sched *Schedule, n, u int) {
	t.Helper()
	seen := make([]int, n+1)
	for mi, g := range sched.Groups() {
		if len(g) > u {
			t.Errorf("machine %d holds %d processes, capacity %d", mi, len(g), u)
		}
		for _, p := range g {
			if p < 1 || p > n {
				t.Fatalf("machine %d holds process %d outside 1..%d", mi, p, n)
			}
			seen[p]++
		}
	}
	for p := 1; p <= n; p++ {
		if seen[p] != 1 {
			t.Errorf("process %d appears %d times", p, seen[p])
		}
	}
}

func TestSolveContextExpiredAllMethods(t *testing.T) {
	inst, err := SyntheticSerial(16, QuadCore, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, m := range []Method{MethodOAStar, MethodHAStar, MethodIP, MethodOSVP, MethodPG, MethodBruteForce} {
		start := time.Now()
		sched, err := SolveContext(ctx, inst, Options{Method: m})
		took := time.Since(start)
		if err != nil {
			t.Errorf("%v under expired deadline errored: %v", m, err)
			continue
		}
		if took > time.Second {
			t.Errorf("%v under expired deadline took %v; want well under 1s", m, took)
		}
		if !sched.Stats.Degraded {
			t.Errorf("%v under expired deadline not flagged degraded", m)
		}
		if sched.Stats.AbortReason == AbortNone {
			t.Errorf("%v under expired deadline carries no abort reason", m)
		}
		validGroups(t, sched, 16, 4)
	}
}

func TestSolveContextCancelDuringSolve(t *testing.T) {
	inst, err := SyntheticSerial(20, QuadCore, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	sched, err := SolveContext(ctx, inst, Options{Method: MethodOAStar})
	if err != nil {
		t.Fatalf("cancelled solve errored: %v", err)
	}
	// The cancel may land after a fast solve completed; degradation is
	// only required when the solve was actually interrupted.
	if sched.Stats.Degraded && sched.Stats.AbortReason != AbortCancel {
		t.Errorf("cancelled solve aborted with %v; want %v", sched.Stats.AbortReason, AbortCancel)
	}
	validGroups(t, sched, 20, 4)
}

func TestSolveRobustNoDeadlineAnswersAtFirstRung(t *testing.T) {
	inst := buildSmallInstance(t)
	sched, err := SolveRobust(context.Background(), inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Stats.Degraded {
		t.Errorf("unconstrained robust solve degraded: %+v", sched.Stats)
	}
	if len(sched.Stats.Fallbacks) != 1 {
		t.Fatalf("fallbacks = %+v; want exactly the OA* rung", sched.Stats.Fallbacks)
	}
	if fb := sched.Stats.Fallbacks[0]; fb.Method != MethodOAStar || fb.Degraded || fb.Err != "" {
		t.Errorf("first rung record = %+v; want clean OA*", fb)
	}
	validGroups(t, sched, 8, 4)

	// The unconstrained ladder must land on the true optimum.
	bf, err := Solve(inst, Options{Method: MethodBruteForce})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sched.TotalDegradation-bf.TotalDegradation) > 1e-6 {
		t.Errorf("robust cost %v != optimum %v", sched.TotalDegradation, bf.TotalDegradation)
	}
}

func TestSolveRobustExpiredDeadlineStillAnswers(t *testing.T) {
	inst, err := SyntheticSerial(16, QuadCore, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	sched, err := SolveRobust(ctx, inst, Options{})
	if err != nil {
		t.Fatalf("robust solve under expired deadline errored: %v", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Errorf("robust solve under expired deadline took %v", took)
	}
	if !sched.Stats.Degraded {
		t.Error("robust solve under expired deadline not flagged degraded")
	}
	if got := len(sched.Stats.Fallbacks); got != len(robustRungs) {
		t.Errorf("ladder recorded %d attempts; want %d (every rung degraded)", got, len(robustRungs))
	}
	validGroups(t, sched, 16, 4)
}

// TestSolveRobustExpiredShareSkipsRungs pins the rung-budget split: a
// rung whose deadline share has already expired must be skipped (never
// silently handed the whole parent context), while the final PG rung
// always runs and answers. Pre-fix, every rung ran on the expired parent
// context and recorded a real degraded attempt.
func TestSolveRobustExpiredShareSkipsRungs(t *testing.T) {
	inst, err := SyntheticSerial(16, QuadCore, 3)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(-time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	sched, err := SolveRobust(ctx, inst, Options{})
	if err != nil {
		t.Fatalf("robust solve under expired deadline errored: %v", err)
	}
	fbs := sched.Stats.Fallbacks
	if len(fbs) != len(robustRungs) {
		t.Fatalf("ladder recorded %d attempts; want %d", len(fbs), len(robustRungs))
	}
	for i, fb := range fbs[:len(fbs)-1] {
		if fb.Err == "" {
			t.Errorf("rung %d (%v) ran with an expired share; want it skipped", i, fb.Method)
		}
		// A skipped rung did no work, so its recorded duration must
		// respect its (zero) share.
		if fb.Duration != 0 {
			t.Errorf("rung %d (%v) skipped but recorded %v of work", i, fb.Method, fb.Duration)
		}
	}
	last := fbs[len(fbs)-1]
	if last.Method != MethodPG || last.Err != "" {
		t.Errorf("final attempt = %+v; want a real PG run", last)
	}
	if !sched.Stats.Degraded {
		t.Error("schedule under expired deadline not flagged degraded")
	}
	validGroups(t, sched, 16, 4)
}

// TestSolveRobustRungDurationsRespectShares runs the ladder under a
// nearly-expired deadline and checks that no rung's recorded duration
// exceeds the whole deadline (each rung's share is at most the full
// remaining time), i.e. an expired share can never hand a rung the
// unbounded parent context.
func TestSolveRobustRungDurationsRespectShares(t *testing.T) {
	inst, err := SyntheticSerial(24, QuadCore, 2)
	if err != nil {
		t.Fatal(err)
	}
	const deadline = 40 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	sched, err := SolveRobust(ctx, inst, Options{})
	if err != nil {
		t.Fatalf("robust solve under tight deadline errored: %v", err)
	}
	// Generous slack for scheduler jitter: the point is "bounded by the
	// deadline", not precise timing.
	for i, fb := range sched.Stats.Fallbacks {
		if fb.Duration > deadline+500*time.Millisecond {
			t.Errorf("rung %d (%v) ran %v; share can never exceed the %v deadline",
				i, fb.Method, fb.Duration, deadline)
		}
	}
	validGroups(t, sched, 24, 4)
}

// cancelOnMemoryAbortSink cancels a context the moment a solver reports
// a memory abort — deterministically exhausting the rung context between
// a rung's first attempt and its would-be halved-budget retry.
type cancelOnMemoryAbortSink struct{ cancel context.CancelFunc }

// Emit implements telemetry.EventSink.
func (s *cancelOnMemoryAbortSink) Emit(ev telemetry.Event) error {
	if ev.Ev == "abort" && ev.Reason == "memory" {
		s.cancel()
	}
	return nil
}

// TestSolveRobustNoRetryOnExhaustedRungContext pins the memory-retry
// guard: when a rung's first attempt aborts on MemoryBudget and the rung
// context is already spent, the ladder must move on instead of burning a
// second attempt on a context that cannot search. Pre-fix, the retry
// reused the exhausted context and recorded a pointless second degraded
// attempt on the same rung.
func TestSolveRobustNoRetryOnExhaustedRungContext(t *testing.T) {
	inst, err := SyntheticSerial(16, QuadCore, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelOnMemoryAbortSink{cancel: cancel}
	// A 2KiB budget is below any solver's initial footprint, so the
	// first graph rung aborts AbortMemory on its first poll; the sink
	// then kills the parent (and with it the rung) context.
	sched, err := SolveRobust(ctx, inst, Options{MemoryBudget: 2048, EventSink: sink})
	if err != nil {
		t.Fatalf("robust solve errored: %v", err)
	}
	var prev Fallback
	for i, fb := range sched.Stats.Fallbacks {
		if i > 0 && fb.Method == prev.Method && prev.Aborted == AbortMemory && fb.Aborted == AbortCancel {
			t.Errorf("rung %v retried on an exhausted context: %+v", fb.Method, sched.Stats.Fallbacks)
		}
		prev = fb
	}
	validGroups(t, sched, 16, 4)
}

func TestOptionValidation(t *testing.T) {
	inst := buildSmallInstance(t)
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"negative KPerLevel", Options{Method: MethodHAStar, KPerLevel: -1}, "KPerLevel"},
		{"negative MaxExpansions", Options{MaxExpansions: -5}, "MaxExpansions"},
		{"NaN HWeight", Options{Method: MethodHAStar, HWeight: math.NaN()}, "HWeight"},
		{"negative HWeight", Options{Method: MethodHAStar, HWeight: -1}, "HWeight"},
		{"negative BeamWidth", Options{Method: MethodHAStar, BeamWidth: -2}, "BeamWidth"},
		{"negative TimeLimit", Options{TimeLimit: -time.Second}, "TimeLimit"},
		{"negative MemoryBudget", Options{MemoryBudget: -1}, "MemoryBudget"},
		{"unknown IPConfig", Options{Method: MethodIP, IPConfig: "bnb-imaginary"}, "IPConfig"},
		{"unknown Method", Options{Method: Method(42)}, "Method"},
		{"out-of-range HStrategy", Options{HStrategy: 9}, "HStrategy"},
		{"unknown Accounting", Options{Accounting: Accounting(7)}, "Accounting"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Solve(inst, tc.opts)
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("got %v; want *OptionError", err)
			}
			if oe.Field != tc.field {
				t.Errorf("rejected field %q; want %q", oe.Field, tc.field)
			}
			if !strings.Contains(oe.Error(), tc.field) {
				t.Errorf("error text %q does not name the field", oe.Error())
			}
		})
	}
}

// panicSink blows up on the first emitted event, standing in for a
// buggy user-supplied observer.
type panicSink struct{ emitted bool }

func (p *panicSink) Emit(telemetry.Event) error {
	p.emitted = true
	panic("sink exploded")
}

func TestSolveRecoversSinkPanic(t *testing.T) {
	inst := buildSmallInstance(t)
	sink := &panicSink{}
	sched, err := Solve(inst, Options{Method: MethodOAStar, EventSink: sink})
	if sched != nil {
		t.Error("panicking solve returned a schedule")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v; want *PanicError", err)
	}
	if pe.Value != "sink exploded" {
		t.Errorf("recovered value %v; want the sink's panic", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
	if !sink.emitted {
		t.Error("sink never saw an event — panic came from elsewhere")
	}
}
