// Command coschedcli schedules a batch of benchmark jobs onto multicore
// machines with any of the methods of the ICPP'15 co-scheduling paper.
//
// Usage:
//
//	coschedcli -machine quad -method oastar -serial BT,CG,EP,FT
//	coschedcli -machine 8core -method hastar -serial BT,CG -pc MG-Par:4,LU-Par:4
//	coschedcli -machine quad -method ip -synthetic 12 -seed 7
//	coschedcli -list
//
// The tool prints the schedule, the per-job degradations and the solver
// statistics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cosched"
	"cosched/internal/telemetry"
)

// flightRecorderSize is the in-memory event window kept for post-hoc
// dumps (SIGQUIT and /debug/trace). Emitting into the ring is
// allocation-free, so the recorder is always on.
const flightRecorderSize = 4096

func main() {
	var (
		machineFlag = flag.String("machine", "quad", "machine class: dual, quad, 8core")
		methodFlag  = flag.String("method", "oastar", "method: oastar, hastar, ip, osvp, pg, brute")
		serialFlag  = flag.String("serial", "", "comma-separated serial benchmark names")
		peFlag      = flag.String("pe", "", "PE jobs as name:procs, comma-separated")
		pcFlag      = flag.String("pc", "", "PC (MPI) jobs as name:procs, comma-separated")
		specFile    = flag.String("specfile", "", "JSON workload description (see cosched.SpecFile)")
		synthetic   = flag.Int("synthetic", 0, "add N synthetic serial jobs instead of named ones")
		seed        = flag.Int64("seed", 1, "seed for synthetic jobs")
		accounting  = flag.String("accounting", "pc", "objective accounting: se, pe, pc")
		ipConfig    = flag.String("ipconfig", "", "IP branch-and-bound preset name")
		timeLimit   = flag.Duration("timelimit", 0, "solver time limit (e.g. 30s); on breach the best incumbent is returned as a degraded schedule")
		deadline    = flag.Duration("deadline", 0, "hard wall-clock deadline enforced through context cancellation; a breached solve returns its best incumbent flagged DEGRADED")
		robust      = flag.Bool("robust", false, "walk the OA* → HA* → beam → PG fallback ladder (splitting -deadline across rungs) instead of a single -method")
		memBudget   = flag.Int64("membudget", 0, "graph-search memory budget in bytes (0 = unbounded); on breach the best incumbent is returned")
		parallel    = flag.Int("parallel", 0, "graph-search expansion workers: 0 = all cores, 1 = exact sequential path, >1 = parallel engine on eligible configurations")
		verbose     = flag.Bool("verbose", false, "also print solver allocation statistics (element pool, dismissal table)")
		traceFile   = flag.String("trace", "", "write the solver's JSONL event trace to this file")
		progress    = flag.Bool("progress", false, "print rate-limited progress lines during long solves")
		debugAddr   = flag.String("debug-addr", "", "serve /debug/vars (solver metrics) and /debug/pprof on this address, e.g. localhost:6060")
		simulate    = flag.Bool("simulate", false, "execute the schedule and print wall-clock outcomes")
		dotFile     = flag.String("dot", "", "write the co-scheduling graph (with the schedule highlighted) as Graphviz DOT to this file")
		list        = flag.Bool("list", false, "list the benchmark catalogue and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("serial programs:", strings.Join(cosched.SerialPrograms(), ", "))
		fmt.Println("PE programs:    ", strings.Join(cosched.PEPrograms(), ", "))
		fmt.Println("PC programs:    ", strings.Join(cosched.PCPrograms(), ", "))
		return
	}

	machine, err := parseMachine(*machineFlag)
	check(err)
	method, err := parseMethod(*methodFlag)
	check(err)
	acct, err := parseAccounting(*accounting)
	check(err)

	var inst *cosched.Instance
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		check(err)
		inst, err = cosched.ParseSpec(data)
		check(err)
	} else if *synthetic > 0 {
		inst, err = cosched.SyntheticSerial(*synthetic, machine, *seed)
		check(err)
	} else {
		w := cosched.NewWorkload()
		for _, name := range splitList(*serialFlag) {
			w.AddSerial(name)
		}
		for _, spec := range splitList(*peFlag) {
			name, procs, err := parseJobSpec(spec)
			check(err)
			w.AddPE(name, procs)
		}
		for _, spec := range splitList(*pcFlag) {
			name, procs, err := parseJobSpec(spec)
			check(err)
			w.AddPC(name, procs)
		}
		inst, err = w.Build(machine)
		check(err)
	}

	opts := cosched.Options{
		Method:       method,
		Accounting:   acct,
		IPConfig:     *ipConfig,
		TimeLimit:    *timeLimit,
		MemoryBudget: *memBudget,
		Parallelism:  *parallel,
	}
	// The flight recorder is always on: SIGQUIT dumps the last events to
	// stderr even when no trace file or debug endpoint was configured.
	recorder := telemetry.NewFlightRecorder(flightRecorderSize)
	opts.EventSink = recorder
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGQUIT)
	go func() {
		for range sigc {
			fmt.Fprintf(os.Stderr, "coschedcli: SIGQUIT — dumping last %d trace events\n", recorder.Len())
			recorder.Dump(os.Stderr) //nolint:errcheck
		}
	}()
	if *debugAddr != "" {
		opts.Metrics = telemetry.Default
		telemetry.PublishExpvar("cosched", telemetry.Default)
		addr, closeDebug, err := telemetry.ServeDebugWith(*debugAddr, telemetry.Default, recorder)
		check(err)
		defer closeDebug() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/vars (pprof under /debug/pprof/, Prometheus under /metrics, recent events under /debug/trace)\n", addr)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		check(err)
		defer f.Close() //nolint:errcheck
		opts.EventTraceWriter = f
	}
	if *progress {
		opts.ProgressWriter = os.Stderr
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	start := time.Now()
	var sched *cosched.Schedule
	if *robust {
		sched, err = cosched.SolveRobust(ctx, inst, opts)
	} else {
		sched, err = cosched.SolveContext(ctx, inst, opts)
	}
	check(err)

	methodName := method.String()
	if *robust {
		methodName = "robust ladder"
	}
	fmt.Printf("method %s on %s (%d processes, %d machines)\n",
		methodName, machine, inst.NumProcesses(), inst.NumMachines())
	if sched.Stats.Degraded {
		fmt.Printf("DEGRADED(%s): budget breached — best incumbent below, not a proven answer\n",
			sched.Stats.AbortReason)
	}
	if len(sched.Stats.Fallbacks) > 0 {
		rungs := make([]string, len(sched.Stats.Fallbacks))
		for i, fb := range sched.Stats.Fallbacks {
			state := "ok"
			switch {
			case fb.Err != "":
				state = "error"
			case fb.Degraded:
				state = fmt.Sprintf("degraded:%s", fb.Aborted)
			}
			rungs[i] = fmt.Sprintf("%s(%s)", fb.Method, state)
		}
		fmt.Printf("fallback ladder: %s\n", strings.Join(rungs, " → "))
	}
	fmt.Print(sched)
	fmt.Printf("solve time: %v", time.Since(start).Round(time.Microsecond))
	if sched.Stats.VisitedPaths > 0 {
		fmt.Printf(", visited paths: %d", sched.Stats.VisitedPaths)
	}
	if sched.Stats.BBNodes > 0 {
		fmt.Printf(", branch-and-bound nodes: %d", sched.Stats.BBNodes)
	}
	fmt.Println()
	if *verbose {
		st := sched.Stats
		if len(st.Phases) > 0 {
			parts := make([]string, len(st.Phases))
			for i, ph := range st.Phases {
				parts[i] = fmt.Sprintf("%s %v", ph.Name, ph.Duration.Round(time.Microsecond))
			}
			fmt.Printf("phase breakdown: %s\n", strings.Join(parts, ", "))
		}
		if st.Generated > 0 {
			fmt.Printf("search breakdown: %d generated = %d expanded + %d superseded + %d beam-trimmed + %d left in frontier\n",
				st.Generated, st.Expanded, st.Dismissed, st.BeamTrimmed, st.InFrontier)
			fmt.Printf("dismissed before admission: %d worse-key, %d pruned, %d condensed away; peak frontier %d\n",
				st.DismissedWorse, st.Pruned, st.Condensed, st.MaxQueue)
		}
		if st.BBNodes > 0 {
			fmt.Printf("branch-and-bound: %d LP pivots, %d incumbent improvements\n",
				st.LPIters, st.BoundImprovements)
		}
		if st.Parallelism > 1 {
			fmt.Printf("parallel search: %d workers, %d steals, %d speculative expansions, %d park transitions\n",
				st.Parallelism, st.Steals, st.Speculative, st.Parked)
		}
		if st.ElemAllocated+st.ElemReused > 0 {
			reusePct := 100 * float64(st.ElemReused) / float64(st.ElemAllocated+st.ElemReused)
			fmt.Printf("allocation stats: %d elements allocated, %d reused (%.1f%% pool hit rate)\n",
				st.ElemAllocated, st.ElemReused, reusePct)
			fmt.Printf("dismissal table: %d distinct keys, %.1f%% slot occupancy\n",
				st.KeyTableEntries, 100*st.KeyTableLoad)
		}
	}

	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		check(err)
		err = inst.WriteGraphDOT(f, sched, 0)
		check(f.Close())
		check(err)
		fmt.Printf("co-scheduling graph written to %s\n", *dotFile)
	}

	if *simulate {
		exec, err := sched.Simulate()
		check(err)
		fmt.Printf("\nsimulated execution: makespan %.1fs, mean job finish %.1fs, %.1f CPU-seconds lost to contention\n",
			exec.Makespan, exec.MeanJobFinish, exec.SlowdownSeconds)
		for mi, busy := range exec.MachineBusy {
			fmt.Printf("  machine %d busy %.1fs\n", mi, busy)
		}
	}
}

func parseMachine(s string) (cosched.MachineKind, error) {
	return cosched.ParseMachineKind(s)
}

func parseMethod(s string) (cosched.Method, error) {
	return cosched.ParseMethod(s)
}

func parseAccounting(s string) (cosched.Accounting, error) {
	return cosched.ParseAccounting(s)
}

func parseJobSpec(s string) (string, int, error) {
	name, procsStr, ok := strings.Cut(s, ":")
	if !ok {
		return "", 0, fmt.Errorf("job spec %q: want name:procs", s)
	}
	procs, err := strconv.Atoi(procsStr)
	if err != nil || procs < 1 {
		return "", 0, fmt.Errorf("job spec %q: bad process count", s)
	}
	return name, procs, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "coschedcli:", err)
		os.Exit(1)
	}
}
