// Command coschedtrace analyses the JSONL event traces written by
// coschedcli -trace, experiments -trace, onlinesim -trace or any
// telemetry.EventWriter. A trace file may hold many solves; every
// subcommand splits it by solve id first.
//
// Usage:
//
//	coschedtrace summary trace.jsonl            per-solve accounting
//	coschedtrace timeline trace.jsonl           ASCII g/h and frontier charts
//	coschedtrace scaling trace.jsonl            worker-pool autoscale timeline
//	coschedtrace cache trace.jsonl              solution-cache replay/store/evict timeline
//	coschedtrace requests trace.jsonl           HTTP request table (coschedd traces)
//	coschedtrace fleet trace.jsonl              fleet-client attempt/breaker chronology
//	coschedtrace diff before.jsonl after.jsonl  counter/phase deltas
//	coschedtrace check trace.jsonl...           replay the trace invariants
//
// summary and timeline accept -solve <id> to select one solve. scaling
// reads the whole stream (scale events belong to the daemon, not a
// solve) and renders the pool-size history coschedd's autoscaler
// recorded — pipe /debug/trace into it. cache reads the whole stream
// the same way and renders the solution-cache history coschedd recorded:
// the boot replay from -cache-dir, stores, and bound-driven evictions,
// each with the cache's resident bytes. requests renders every HTTP
// request the daemon recorded, with its request ID, phase breakdown and
// the solve_id to feed back into `timeline -solve`; -slow N marks
// requests that took at least N ms. fleet renders a coschedclient trace
// (coschedload -client-trace) as a chronology of per-attempt calls,
// per-request summaries and circuit-breaker transitions — the req_id
// column joins each attempt to the replica access log that served it.
// diff pairs the files' solves in
// order and exits non-zero when any pair reached different solution
// costs. check exits non-zero when any invariant fails, naming each
// violated invariant. A file argument of "-" reads the trace from
// stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cosched/internal/tracetool"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := args[0], args[1:]
	var err error
	switch cmd {
	case "summary":
		err = perSolve(args, tracetool.WriteSummary)
	case "timeline":
		err = perSolve(args, tracetool.WriteTimeline)
	case "scaling":
		err = runScaling(args)
	case "cache":
		err = runCache(args)
	case "requests":
		err = runRequests(args)
	case "fleet":
		err = runFleet(args)
	case "diff":
		err = runDiff(args)
	case "check":
		err = runCheck(args)
	default:
		fmt.Fprintf(os.Stderr, "coschedtrace: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coschedtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: coschedtrace <command> [flags] <trace.jsonl>...

commands:
  summary   per-solve expansion/dismissal accounting, phases, depth profile
  timeline  ASCII charts: popped g/h vs pop, frontier vs pop
  scaling   coschedd worker-pool autoscale timeline from scale events
  cache     coschedd solution-cache timeline: boot replay, stores, evictions, bytes
  requests  coschedd HTTP request table: id, phases, cache, solve_id join key
  fleet     coschedclient attempt/request/breaker chronology (req_id join key)
  diff      compare two traces' solves counter by counter (exit 1 on cost mismatch)
  check     replay each solve against the producer's trace invariants

flags (summary, timeline):
  -solve N  only the solve with this id

flags (requests):
  -slow N   mark requests that took at least N ms with *
`)
}

// loadFile reads and splits one trace file; "-" reads stdin (so a
// /debug/trace response can be piped straight in).
func loadFile(path string) ([]*tracetool.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close() //nolint:errcheck
		r = f
	}
	traces, err := tracetool.Load(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return traces, nil
}

// perSolve runs a renderer over every (or the selected) solve of one
// trace file.
func perSolve(args []string, render func(w io.Writer, tr *tracetool.Trace) error) error {
	fs := flag.NewFlagSet("coschedtrace", flag.ExitOnError)
	solveID := fs.Uint64("solve", 0, "only the solve with this id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want one trace file, got %d", fs.NArg())
	}
	traces, err := loadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	matched := false
	for _, tr := range traces {
		if *solveID != 0 && tr.ID != *solveID {
			continue
		}
		matched = true
		if err := render(os.Stdout, tr); err != nil {
			return err
		}
		fmt.Println()
	}
	if !matched {
		return fmt.Errorf("%s: no solve matched", fs.Arg(0))
	}
	return nil
}

func runDiff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("diff wants exactly two trace files, got %d", len(args))
	}
	as, err := loadFile(args[0])
	if err != nil {
		return err
	}
	bs, err := loadFile(args[1])
	if err != nil {
		return err
	}
	n := min(len(as), len(bs))
	if len(as) != len(bs) {
		fmt.Fprintf(os.Stderr, "coschedtrace: %s has %d solves, %s has %d; comparing the first %d\n",
			args[0], len(as), args[1], len(bs), n)
	}
	mismatch := false
	for i := 0; i < n; i++ {
		rep := tracetool.Diff(as[i], bs[i])
		if err := tracetool.WriteDiff(os.Stdout, as[i], bs[i], rep); err != nil {
			return err
		}
		fmt.Println()
		mismatch = mismatch || rep.CostMismatch
	}
	if mismatch {
		return fmt.Errorf("solution costs differ")
	}
	return nil
}

func runCheck(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("check wants at least one trace file")
	}
	failures := 0
	for _, path := range args {
		traces, err := loadFile(path)
		if err != nil {
			return err
		}
		for _, tr := range traces {
			vs := tracetool.Check(tr)
			tag := "ok"
			if tr.Truncated {
				tag = "ok (truncated)"
			}
			if len(vs) > 0 {
				tag = "FAIL"
				failures += len(vs)
			}
			fmt.Printf("%s: solve %d (%s, %d events): %s\n", path, tr.ID, methodOr(tr), len(tr.Events), tag)
			for _, v := range vs {
				fmt.Printf("  %s\n", v)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d invariant violation(s)", failures)
	}
	return nil
}

// runScaling renders the autoscale timeline of one trace file (scale
// events are daemon-global, so the whole stream feeds one timeline).
func runScaling(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("scaling wants one trace file, got %d", len(args))
	}
	traces, err := loadFile(args[0])
	if err != nil {
		return err
	}
	return tracetool.WriteScaling(os.Stdout, traces)
}

// runCache renders the solution-cache timeline of one trace file
// (cache events are daemon-global, like scale events: the whole stream
// feeds one timeline).
func runCache(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cache wants one trace file, got %d", len(args))
	}
	traces, err := loadFile(args[0])
	if err != nil {
		return err
	}
	return tracetool.WriteCache(os.Stdout, traces)
}

// runRequests renders a daemon trace's HTTP request table (request
// events are daemon-global: served ones file under their solve, and
// rejections under the ambient trace — the renderer walks both).
func runRequests(args []string) error {
	fs := flag.NewFlagSet("coschedtrace requests", flag.ExitOnError)
	slowMS := fs.Float64("slow", 0, "mark requests that took at least this many ms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("requests wants one trace file, got %d", fs.NArg())
	}
	traces, err := loadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	return tracetool.WriteRequests(os.Stdout, traces, *slowMS)
}

// runFleet renders a fleet-client trace's attempt/request/breaker
// chronology (client events are daemon-less: they all file under the
// ambient trace, and the renderer walks every trace regardless).
func runFleet(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("fleet wants one trace file, got %d", len(args))
	}
	traces, err := loadFile(args[0])
	if err != nil {
		return err
	}
	return tracetool.WriteFleet(os.Stdout, traces)
}

func methodOr(tr *tracetool.Trace) string {
	if m := tr.Method(); m != "" {
		return m
	}
	return "unknown"
}
