package main

// oaProbe measures exact OA* cost on smooth synthetic instances (the
// Fig. 5 / Fig. 9 population) at several sizes. Run via
// "go run ./cmd/scaleprobe -oa".
import (
	"fmt"
	"time"

	"cosched/internal/astar"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/workload"
)

func oaProbe() {
	for _, n := range []int{16, 24, 32, 48} {
		in, err := workload.SyntheticPairwiseSmoothInstance(n, &cache.QuadCore, 77)
		if err != nil {
			panic(err)
		}
		g := graph.New(in.Cost(degradation.ModePC), nil)
		s, err := astar.NewSolver(g, astar.Options{H: astar.HPerProc, UseIncumbent: true})
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		res, err := s.Solve()
		if err != nil {
			fmt.Printf("n=%d ERR %v\n", n, err)
			continue
		}
		mer, ok := g.PathMER(res.Groups)
		fmt.Printf("n=%d cost=%.4f pops=%d gen=%d pruned=%d mer=%d(%v) time=%.2fs\n",
			n, res.Cost, res.Stats.VisitedPaths, res.Stats.Generated, res.Stats.Pruned,
			mer, ok, time.Since(t0).Seconds())
	}
}
