package main

// pcProbe measures OA*-PC on the Fig. 7 mix (4 MPI jobs + 4 serial) and
// the PC-vs-PE contrast: the OA*-PE schedule evaluated under the full
// communication-combined objective. Run via "go run ./cmd/scaleprobe -pc".
import (
	"fmt"
	"time"

	"cosched/internal/astar"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/workload"
)

func pcProbe() {
	for _, per := range []int{4, 6} {
		in, err := workload.PCMixInstance(per, &cache.QuadCore)
		if err != nil {
			panic(err)
		}
		cpc := in.Cost(degradation.ModePC)
		g := graph.New(cpc, in.Patterns)
		s, err := astar.NewSolver(g, astar.Options{H: astar.HPerProc, Condense: true,
			UseIncumbent: true, MaxExpansions: 3_000_000})
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		res, err := s.Solve()
		if err == nil && res.Stats.Degraded {
			fmt.Printf("per=%d PC >cap (%s, %.1fs)\n", per, res.Stats.Aborted, time.Since(t0).Seconds())
			continue
		}
		if err != nil {
			fmt.Printf("per=%d PC ERR %v (%.1fs)\n", per, err, time.Since(t0).Seconds())
			continue
		}
		fmt.Printf("per=%d PC cost=%.4f pops=%d time=%.2fs\n",
			per, res.Cost, res.Stats.VisitedPaths, time.Since(t0).Seconds())

		gpe := graph.New(in.Cost(degradation.ModePE), in.Patterns)
		spe, err := astar.NewSolver(gpe, astar.Options{H: astar.HPerProc, Condense: true,
			UseIncumbent: true, MaxExpansions: 3_000_000})
		if err != nil {
			panic(err)
		}
		t0 = time.Now()
		rpe, err := spe.Solve()
		if err == nil && rpe.Stats.Degraded {
			fmt.Printf("per=%d PE >cap (%s, %.1fs)\n", per, rpe.Stats.Aborted, time.Since(t0).Seconds())
			continue
		}
		if err != nil {
			fmt.Printf("per=%d PE ERR %v (%.1fs)\n", per, err, time.Since(t0).Seconds())
			continue
		}
		peUnderPC := cpc.PartitionCost(rpe.Groups)
		fmt.Printf("per=%d PE-sched-under-PC=%.4f (PC-optimal %.4f, gap %.1f%%) time=%.2fs\n",
			per, peUnderPC, res.Cost, (peUnderPC-res.Cost)/res.Cost*100, time.Since(t0).Seconds())
	}
}
