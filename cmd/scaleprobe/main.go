// Command scaleprobe measures HA* scalability and quality against PG on
// large synthetic batches (the Figs. 12-13 configuration). It is a
// development tool; the reproducible experiment lives in cmd/experiments.
package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"cosched/internal/astar"
	"cosched/internal/cache"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/pg"
	"cosched/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-pc" {
		pcProbe()
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "-oa" {
		oaProbe()
		return
	}
	sizes := []int{96, 240, 480, 1208}
	if len(os.Args) > 1 {
		sizes = nil
		for _, a := range os.Args[1:] {
			n, err := strconv.Atoi(a)
			if err != nil {
				panic(err)
			}
			sizes = append(sizes, n)
		}
	}
	for _, n := range sizes {
		m := cache.QuadCore
		in, err := workload.SyntheticPairwiseInstance(n, &m, 5)
		if err != nil {
			panic(err)
		}
		c := in.Cost(degradation.ModePC)
		g := graph.New(c, nil)
		for _, b := range []int{8, 32, 128} {
			s, err := astar.NewSolver(g, astar.Options{H: astar.HPerProcAvg, KPerLevel: n / 4,
				HWeight: 1.2, BeamWidth: b})
			if err != nil {
				panic(err)
			}
			t0 := time.Now()
			res, err := s.Solve()
			if err != nil {
				fmt.Printf("n=%d beam=%d ERR %v (%.1fs)\n", n, b, err, time.Since(t0).Seconds())
				continue
			}
			fmt.Printf("n=%d beam=%d cost=%.3f avg=%.4f pops=%d gen=%d time=%.2fs\n",
				n, b, res.Cost, res.Cost/float64(n), res.Stats.VisitedPaths, res.Stats.Generated,
				time.Since(t0).Seconds())
		}
		t0 := time.Now()
		p := pg.Solve(c)
		fmt.Printf("n=%d PG cost=%.3f avg=%.4f time=%.2fs\n", n, p.Cost, p.Cost/float64(n), time.Since(t0).Seconds())
	}
}
