// Command experiments regenerates the tables and figures of the paper's
// evaluation (§V).
//
// Usage:
//
//	experiments -list
//	experiments -exp table1
//	experiments -exp fig12 -quick
//	experiments -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cosched/internal/experiments"
	"cosched/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (table1..table4, fig5..fig13, ablations, or 'all')")
		quick    = flag.Bool("quick", false, "shrink graph counts and sweeps for a fast run")
		seed     = flag.Int64("seed", 1, "synthetic workload seed")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonFlag = flag.Bool("json", false, "emit reports as JSON instead of text tables")
		outDir   = flag.String("out", "", "also write each report to <out>/<id>.txt (and .json)")
		debug    = flag.String("debug-addr", "", "serve /debug/vars (solver metrics) and /debug/pprof on this address while experiments run")
		trace    = flag.String("trace", "", "append every solve's JSONL event trace to this file (split per solve with coschedtrace)")
		par      = flag.Int("parallel", 0, "graph-search expansion workers (0/1 = exact sequential path)")
	)
	flag.Parse()

	runOpts := experiments.RunOptions{Quick: *quick, Seed: *seed, Parallelism: *par}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close() //nolint:errcheck
		runOpts.Events = telemetry.NewEventWriter(f)
	}
	if *debug != "" {
		runOpts.Metrics = telemetry.Default
		telemetry.PublishExpvar("cosched", telemetry.Default)
		addr, closeDebug, err := telemetry.ServeDebug(*debug, telemetry.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer closeDebug() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/vars (pprof under /debug/pprof/)\n", addr)
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Println("  ", id)
		}
		if *exp == "" && !*list {
			fmt.Println("\nuse -exp <id> or -exp all")
		}
		return
	}

	opts := runOpts
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *outDir != "" {
			if err := writeReport(*outDir, id, rep); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		if *jsonFlag {
			out, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(out))
			continue
		}
		fmt.Print(rep)
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

// writeReport saves the text and JSON renderings of one report.
func writeReport(dir, id string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, id+".txt"), []byte(rep.String()), 0o644); err != nil {
		return err
	}
	js, err := rep.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".json"), js, 0o644)
}
