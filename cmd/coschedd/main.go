// Command coschedd serves the cosched solver over HTTP/JSON: a bounded
// worker pool behind an admission queue, per-request deadlines, a
// fingerprint-keyed cache of solved schedules (entry- and byte-bounded
// via -cache/-cache-bytes; persisted and restart-warm via -cache-dir),
// and graceful drain on SIGTERM/SIGINT. The pool is fixed at -workers,
// or autoscales between -workers-min and -workers-max on queue-delay
// pressure (SERVING.md documents the tuning knobs and metrics).
//
// Usage:
//
//	coschedd -addr :8080 -workers 4
//	coschedd -addr :8080 -workers-min 1 -workers-max 8
//	curl -s localhost:8080/v1/solve -d '{"synthetic": 8, "method": "hastar"}'
//	curl -s localhost:8080/v1/solve-robust -d '{"synthetic": 8, "deadline_ms": 200}'
//	curl -s localhost:8080/v1/batch -d '{"requests": [{"synthetic": 6}, {"synthetic": 8}]}'
//
// Telemetry lives on the same listener: Prometheus metrics under
// /metrics (the server.* family plus solver metrics), expvar under
// /debug/vars, pprof under /debug/pprof/, the flight recorder's recent
// solver events under /debug/trace, and the recent-requests ring under
// /debug/requests. Every request is logged as one structured JSON line
// (-access-log; -access-log-slow keeps only slow or failed requests)
// carrying the request ID the daemon echoes on X-Request-ID.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cosched/internal/server"
	"cosched/internal/telemetry"
)

// flightRecorderSize is the in-memory event window exposed under
// /debug/trace; emitting into the ring is allocation-free, so the
// recorder is always on.
const flightRecorderSize = 8192

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers      = flag.Int("workers", 2, "solver worker goroutines (fixed pool; shorthand for -workers-min == -workers-max)")
		workersMin   = flag.Int("workers-min", 0, "autoscaled pool floor (0 = -workers)")
		workersMax   = flag.Int("workers-max", 0, "autoscaled pool ceiling (0 = -workers; > min enables the autoscaler)")
		scaleEvery   = flag.Duration("scale-interval", 0, "autoscaler decision interval (0 = 1s)")
		scaleUpP90   = flag.Duration("scale-up-p90", 0, "grow when the recent p90 queue delay exceeds this (0 = 25ms)")
		scaleIdle    = flag.Duration("scale-idle", 0, "shrink after this long with no admissions and an empty queue (0 = 5s)")
		scaleCool    = flag.Duration("scale-cooldown", 0, "minimum gap between scale events (0 = 2s)")
		queueDepth   = flag.Int("queue", 64, "admission queue depth; a full queue rejects with 429")
		cacheEntries = flag.Int("cache", 128, "solved-schedule cache capacity in entries (-1 disables)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "solved-schedule cache budget in bytes (-1 = entry bound only)")
		cacheDir     = flag.String("cache-dir", "", "persist the solution cache to a segment log here and pre-warm from it at boot ('' = memory only)")
		oracleCache  = flag.Int("oracle-cache", 1<<16, "per-instance degradation-memo capacity in entries")
		oraclePool   = flag.Int("oracle-pool", 64, "fingerprint-keyed oracle pool capacity in instances (-1 disables)")
		defaultDL    = flag.Duration("default-deadline", 0, "deadline applied to requests that set none (0 = none)")
		maxDL        = flag.Duration("max-deadline", 0, "cap on any request's deadline (0 = uncapped)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight solves on shutdown")
		solvePar     = flag.Int("solve-parallelism", 1, "expansion workers per graph solve for requests that set no parallelism (1 = exact sequential path)")
		accessLog    = flag.String("access-log", "stderr", "structured access-log destination: stderr, stdout, a file path, or 'off'")
		accessSlow   = flag.Duration("access-log-slow", 0, "log only requests at least this slow or with status >= 400 (0 = log everything)")
		requestsRing = flag.Int("requests-ring", 256, "/debug/requests retained-request count (-1 disables)")
		sloLatency   = flag.Duration("slo-latency", 500*time.Millisecond, "latency objective: a 200 within this is a good event for server.slo.latency")
		sloObjective = flag.Float64("slo-objective", 0.99, "target good fraction for the availability and latency SLOs")
		replicaID    = flag.String("replica-id", "", "stable fleet identity for this daemon, shown in /healthz, access logs and request events (empty = boot-generated)")
	)
	flag.Parse()

	logger, closeLog, err := openAccessLog(*accessLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coschedd:", err)
		os.Exit(1)
	}
	if closeLog != nil {
		defer closeLog()
	}

	recorder := telemetry.NewFlightRecorder(flightRecorderSize)
	srv, err := server.New(server.Config{
		Workers:            *workers,
		WorkersMin:         *workersMin,
		WorkersMax:         *workersMax,
		ScaleInterval:      *scaleEvery,
		ScaleUpP90:         *scaleUpP90,
		ScaleIdle:          *scaleIdle,
		ScaleCooldown:      *scaleCool,
		QueueDepth:         *queueDepth,
		CacheEntries:       *cacheEntries,
		CacheBytes:         *cacheBytes,
		CacheDir:           *cacheDir,
		OracleCacheEntries: *oracleCache,
		OraclePoolEntries:  *oraclePool,
		DefaultDeadline:    *defaultDL,
		MaxDeadline:        *maxDL,
		SolveParallelism:   *solvePar,
		Metrics:            telemetry.Default,
		Recorder:           recorder,
		AccessLog:          logger,
		AccessLogSlow:      *accessSlow,
		RequestRing:        *requestsRing,
		SLOLatency:         *sloLatency,
		SLOObjective:       *sloObjective,
		ReplicaID:          *replicaID,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coschedd:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		st := srv.CacheStats()
		fmt.Printf("coschedd: cache warm: replayed %d records (%d skipped) from %s\n",
			st.Replayed, st.ReplaySkipped, *cacheDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coschedd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("coschedd: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Printf("coschedd: %v — draining (timeout %v)\n", sig, *drainTimeout)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "coschedd:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then let admitted solves finish.
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "coschedd: shutdown:", err)
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "coschedd: drain:", err)
		os.Exit(1)
	}
	if err := srv.CloseCache(); err != nil {
		fmt.Fprintln(os.Stderr, "coschedd: cache close:", err)
	}
	st := srv.CacheStats()
	fmt.Printf("coschedd: drained clean (cache: %d entries, %d bytes, %d hits, %d misses, %d evictions, %d spilled)\n",
		st.Entries, st.Bytes, st.Hits, st.Misses, st.Evictions, st.Spilled)
}

// openAccessLog resolves the -access-log flag into a JSON slog logger:
// "stderr"/"stdout" write to the process streams, "off"/"" disables the
// log, anything else is a file path opened for append. The returned
// close function is nil when there is nothing to close.
func openAccessLog(dest string) (*slog.Logger, func(), error) {
	switch dest {
	case "off", "":
		return nil, nil, nil
	case "stderr":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil, nil
	case "stdout":
		return slog.New(slog.NewJSONHandler(os.Stdout, nil)), nil, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("access log: %w", err)
	}
	return slog.New(slog.NewJSONHandler(f, nil)), func() { f.Close() }, nil //nolint:errcheck // append-only log
}
