// Command coschedload is the open-loop serving benchmark for coschedd:
// it fires a fixed-arrival-rate RPS ladder of solve requests (a seeded
// warm/cold fingerprint mix) at a daemon and writes the measured
// per-rung throughput, latency percentiles, cache effectiveness and
// rejection breakdown to BENCH_serving.json (internal/loadgen;
// methodology in BENCHMARKS.md, daemon knobs in SERVING.md).
//
// Usage:
//
//	coschedload -addr http://127.0.0.1:8080 -rungs 8x3s,15x3s
//	coschedload -rungs 8x3s,15x3s -workers-min 1 -workers-max 4
//	coschedload -replicas http://127.0.0.1:8080,http://127.0.0.1:8081 -rungs 8x3s,15x3s
//	coschedload -check BENCH_serving.json
//
// With -addr it attaches to a running daemon; without it, it boots an
// in-process server (honouring the -workers-min/-workers-max autoscaler
// bounds) on an ephemeral port, runs the ladder, and drains it. -check
// validates an existing report file instead of running anything.
//
// With -replicas, every request goes through the fault-tolerant fleet
// client (internal/coschedclient) instead of a bare HTTP POST: requests
// are consistent-hash routed across the listed daemons with retries,
// hedging and per-backend circuit breaking, the report gains a "fleet"
// section, and -client-trace captures the client's per-attempt JSONL
// events (render with `coschedtrace fleet`). -max-error-rate and
// -assert-deadline turn the run into a pass/fail gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"cosched/internal/coschedclient"
	"cosched/internal/loadgen"
	"cosched/internal/server"
	"cosched/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:8080); empty boots an in-process daemon")
		rungsFlag  = flag.String("rungs", "5x3s,10x3s", "offered-load ladder: comma-separated <rps>x<duration> rungs")
		pool       = flag.Int("pool", 8, "distinct warm workload fingerprints")
		warm       = flag.Float64("warm", 0.5, "fraction of requests drawn from the warm pool (0..1)")
		synthetic  = flag.Int("synthetic", 6, "jobs per request workload")
		method     = flag.String("method", "hastar", "solver method per request")
		deadlineMS = flag.Int64("deadline-ms", 0, "per-request deadline forwarded to the daemon (0 = server default)")
		seed       = flag.Int64("seed", 1, "schedule seed (same seed, same request schedule)")
		out        = flag.String("out", "BENCH_serving.json", "report file to write")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		note       = flag.String("note", "", "environment note recorded in the report")
		check      = flag.String("check", "", "validate this report file and exit (runs no load)")

		workersMin = flag.Int("workers-min", 1, "in-process daemon: autoscaled pool floor")
		workersMax = flag.Int("workers-max", 4, "in-process daemon: autoscaled pool ceiling")
		queueDepth = flag.Int("queue", 256, "in-process daemon: admission queue depth")
		scaleEvery = flag.Duration("scale-interval", 0, "in-process daemon: autoscaler decision interval (0 = 1s)")
		scaleUpP90 = flag.Duration("scale-up-p90", 0, "in-process daemon: grow threshold on recent p90 queue delay (0 = 25ms)")

		replicas    = flag.String("replicas", "", "comma-separated daemon base URLs; routes the ladder through the fleet client (overrides -addr)")
		clientTrace = flag.String("client-trace", "", "write the fleet client's JSONL event trace here (requires -replicas)")
		hedgeQ      = flag.Float64("hedge-quantile", 0, "fleet client: hedge after this quantile of recent latencies (0 = 0.9, negative disables)")
		maxAttempts = flag.Int("max-attempts", 0, "fleet client: attempt rounds per logical request (0 = 3)")
		maxErrRate  = flag.Float64("max-error-rate", -1, "fail the run when the non-429 error rate across all rungs exceeds this fraction (negative disables)")
		assertDL    = flag.Duration("assert-deadline", 0, "fail the run when any request's latency exceeds -deadline-ms plus this grace (0 disables)")
	)
	flag.Parse()

	if *check != "" {
		report, err := loadgen.LoadReport(*check)
		if err == nil {
			err = report.Validate()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "coschedload: check:", err)
			os.Exit(1)
		}
		fmt.Printf("coschedload: %s validates (%d rungs)\n", *check, len(report.Rungs))
		return
	}

	rungs, err := loadgen.ParseRungs(*rungsFlag)
	if err != nil {
		fatal(err)
	}
	cfg := loadgen.Config{
		Rungs:        rungs,
		PoolSize:     *pool,
		WarmFraction: *warm,
		Seed:         *seed,
		Synthetic:    *synthetic,
		Method:       *method,
		DeadlineMS:   *deadlineMS,
	}
	sched, err := loadgen.BuildSchedule(cfg)
	if err != nil {
		fatal(err)
	}

	env := loadgen.Environment{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Go:         runtime.Version(),
		OSArch:     runtime.GOOS + "/" + runtime.GOARCH,
		Note:       *note,
	}
	baseURL := *addr
	var fleet *coschedclient.Client
	var fleetURLs []string
	if *replicas != "" {
		fleetURLs = splitReplicas(*replicas)
		sink, closeTrace, terr := openTrace(*clientTrace)
		if terr != nil {
			fatal(terr)
		}
		if closeTrace != nil {
			defer closeTrace()
		}
		fleet, err = coschedclient.New(coschedclient.Config{
			Replicas:      fleetURLs,
			HTTPClient:    &http.Client{Timeout: *timeout},
			MaxAttempts:   *maxAttempts,
			HedgeQuantile: *hedgeQ,
			Seed:          *seed,
			Metrics:       telemetry.Default,
			EventSink:     sink,
		})
		if err != nil {
			fatal(err)
		}
	} else if *clientTrace != "" {
		fatal(fmt.Errorf("-client-trace requires -replicas"))
	}
	var drain func()
	if baseURL == "" && fleet == nil {
		baseURL, drain, err = bootDaemon(*workersMin, *workersMax, *queueDepth, *scaleEvery, *scaleUpP90)
		if err != nil {
			fatal(err)
		}
		defer drain()
		env.WorkersMin = *workersMin
		env.WorkersMax = *workersMax
		fmt.Printf("coschedload: booted in-process daemon at %s (workers %d..%d)\n", baseURL, *workersMin, *workersMax)
	}

	runner := &loadgen.Runner{BaseURL: baseURL, Client: &http.Client{Timeout: *timeout}}
	if fleet != nil {
		fmt.Printf("coschedload: firing %d requests over %d rungs across %d replicas (%s)\n",
			len(sched), len(rungs), len(fleetURLs), strings.Join(fleetURLs, ", "))
		runner.Do = func(ctx context.Context, id string, body []byte) (int, []byte, error) {
			res, derr := fleet.DoJSON(ctx, id, body)
			if res == nil {
				return 0, nil, derr
			}
			return res.Status, res.Body, derr
		}
	} else {
		fmt.Printf("coschedload: firing %d requests over %d rungs at %s\n", len(sched), len(rungs), baseURL)
	}
	report, err := runner.Run(context.Background(), cfg, sched)
	if err != nil {
		fatal(err)
	}
	if fleet != nil {
		st := fleet.Stats()
		report.Fleet = &loadgen.FleetStats{
			Requests:          st.Requests,
			Attempts:          st.Attempts,
			Retries:           st.Retries,
			Hedges:            st.Hedges,
			HedgeWins:         st.HedgeWins,
			Failovers:         st.Failovers,
			Spillovers:        st.Spillovers,
			Failures:          st.Failures,
			DeadlineExhausted: st.DeadlineExhausted,
			BreakerOpens:      st.BreakerOpens,
			BreakerHalfOpens:  st.BreakerHalfOpens,
			BreakerCloses:     st.BreakerCloses,
			Replicas:          fleetURLs,
		}
	}
	report.Environment = env
	report.BenchmarkCmd = benchmarkCmd()
	if err := report.Validate(); err != nil {
		fatal(fmt.Errorf("run produced an invalid report: %w", err))
	}
	if err := report.WriteFile(*out); err != nil {
		fatal(err)
	}

	for i, rg := range report.Rungs {
		fmt.Printf("rung %d: offered %.1f rps for %.0fs — achieved %.1f rps, p50 %.1fms p90 %.1fms p99 %.1fms p999 %.1fms, "+
			"ok %d / 429 %d / 503 %d / 504 %d / err %d, cache hit rate %.0f%%, degraded %d\n",
			i, rg.OfferedRPS, rg.DurationS, rg.AchievedRPS,
			rg.Latency.P50, rg.Latency.P90, rg.Latency.P99, rg.Latency.P999,
			rg.Status.OK, rg.Status.Rejected429, rg.Status.Rejected503, rg.Status.Rejected504, rg.Status.Errors,
			rg.CacheHitRate*100, rg.Degraded)
		// Failed and rejected requests come with the IDs the daemon
		// logged, so a 5xx spike during a ladder run is attributable.
		for _, f := range rg.Failures {
			if f.Err != "" {
				fmt.Printf("  failed: %s transport: %s\n", f.ID, f.Err)
			} else {
				fmt.Printf("  failed: %s status %d\n", f.ID, f.Status)
			}
		}
		for _, s := range rg.Slowest {
			cached := ""
			if s.Cached {
				cached = " (cached)"
			}
			fmt.Printf("  slow: %s %.1fms status %d%s\n", s.ID, s.LatencyMS, s.Status, cached)
		}
	}
	if f := report.Fleet; f != nil {
		// One greppable line: the CI chaos gate asserts on these fields.
		fmt.Printf("coschedload: fleet requests=%d attempts=%d retries=%d hedges=%d hedge_wins=%d "+
			"failovers=%d spillovers=%d failures=%d deadline_exhausted=%d "+
			"breaker_opens=%d breaker_half_opens=%d breaker_closes=%d\n",
			f.Requests, f.Attempts, f.Retries, f.Hedges, f.HedgeWins,
			f.Failovers, f.Spillovers, f.Failures, f.DeadlineExhausted,
			f.BreakerOpens, f.BreakerHalfOpens, f.BreakerCloses)
	}
	fmt.Printf("coschedload: wrote %s\n", *out)
	if err := checkGates(report, *maxErrRate, *deadlineMS, *assertDL); err != nil {
		fmt.Fprintln(os.Stderr, "coschedload: gate:", err)
		os.Exit(1)
	}
}

// splitReplicas parses the -replicas flag into trimmed non-empty URLs.
func splitReplicas(s string) []string {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			urls = append(urls, part)
		}
	}
	return urls
}

// openTrace opens the -client-trace JSONL sink ("" means no trace). The
// returned close function flushes buffered events before closing.
func openTrace(path string) (telemetry.EventSink, func(), error) {
	if path == "" {
		return nil, nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("client trace: %w", err)
	}
	ew := telemetry.NewEventWriter(f)
	return ew, func() {
		ew.Flush() //nolint:errcheck // best-effort trace
		f.Close()  //nolint:errcheck
	}, nil
}

// checkGates applies the run's pass/fail assertions: -max-error-rate
// bounds the whole-run non-429 error fraction (transport failures,
// 503/504 and unexpected statuses — 429s are the daemon shedding load
// as designed), and -assert-deadline bounds every observed latency by
// the request deadline plus a grace for network and encode time.
func checkGates(report *loadgen.Report, maxErrRate float64, deadlineMS int64, grace time.Duration) error {
	var total, bad int64
	maxLatencyMS := 0.0
	for _, rg := range report.Rungs {
		total += rg.Requests
		bad += rg.Status.Rejected503 + rg.Status.Rejected504 + rg.Status.Other + rg.Status.Errors
		if rg.Latency.Max > maxLatencyMS {
			maxLatencyMS = rg.Latency.Max
		}
	}
	if maxErrRate >= 0 && total > 0 {
		rate := float64(bad) / float64(total)
		if rate > maxErrRate {
			return fmt.Errorf("non-429 error rate %.2f%% (%d/%d) exceeds %.2f%%",
				rate*100, bad, total, maxErrRate*100)
		}
		fmt.Printf("coschedload: gate ok: non-429 error rate %.2f%% (%d/%d) within %.2f%%\n",
			rate*100, bad, total, maxErrRate*100)
	}
	if grace > 0 {
		if deadlineMS <= 0 {
			return fmt.Errorf("-assert-deadline needs -deadline-ms")
		}
		limitMS := float64(deadlineMS) + float64(grace)/float64(time.Millisecond)
		if maxLatencyMS > limitMS {
			return fmt.Errorf("max latency %.1fms exceeds deadline %dms + grace %v",
				maxLatencyMS, deadlineMS, grace)
		}
		fmt.Printf("coschedload: gate ok: max latency %.1fms within deadline %dms + grace %v\n",
			maxLatencyMS, deadlineMS, grace)
	}
	return nil
}

// bootDaemon starts an in-process coschedd engine on an ephemeral port
// and returns its base URL plus a drain function.
func bootDaemon(workersMin, workersMax, queueDepth int, scaleEvery, scaleUpP90 time.Duration) (string, func(), error) {
	srv, err := server.New(server.Config{
		WorkersMin:    workersMin,
		WorkersMax:    workersMax,
		QueueDepth:    queueDepth,
		ScaleInterval: scaleEvery,
		ScaleUpP90:    scaleUpP90,
		Metrics:       telemetry.Default,
		Recorder:      telemetry.NewFlightRecorder(8192),
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go httpSrv.Serve(ln) //nolint:errcheck // closed by the drain func
	drain := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck
		srv.Drain(ctx)        //nolint:errcheck
	}
	return "http://" + ln.Addr().String(), drain, nil
}

// benchmarkCmd reconstructs the invocation for the report, recording
// every flag explicitly set.
func benchmarkCmd() string {
	parts := []string{"go run ./cmd/coschedload"}
	flag.Visit(func(f *flag.Flag) {
		val := f.Value.String()
		if strings.ContainsAny(val, " \t") {
			val = fmt.Sprintf("%q", val)
		}
		parts = append(parts, fmt.Sprintf("-%s %s", f.Name, val))
	})
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coschedload:", err)
	os.Exit(1)
}
