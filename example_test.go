package cosched_test

import (
	"fmt"
	"sort"

	"cosched"
)

// ExampleSolve schedules a small serial batch optimally and prints the
// machine assignment.
func ExampleSolve() {
	w := cosched.NewWorkload()
	for _, name := range []string{"art", "MG", "EP", "vpr"} {
		w.AddSerial(name)
	}
	inst, err := w.Build(cosched.DualCore)
	if err != nil {
		panic(err)
	}
	sched, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodOAStar})
	if err != nil {
		panic(err)
	}
	for i, names := range sched.Machines() {
		fmt.Printf("machine %d: %v\n", i, names)
	}
	// Output:
	// machine 0: [art vpr]
	// machine 1: [MG EP]
}

// ExampleWorkload_AddPC shows a mixed batch with an MPI job.
func ExampleWorkload_AddPC() {
	w := cosched.NewWorkload()
	w.AddPC("MG-Par", 4)
	w.AddSerial("EP")
	w.AddSerial("vpr")
	w.AddSerial("art")
	w.AddSerial("IS")
	inst, err := w.Build(cosched.QuadCore)
	if err != nil {
		panic(err)
	}
	fmt.Println(inst.NumProcesses(), "processes on", inst.NumMachines(), "machines")
	// Output:
	// 8 processes on 2 machines
}

// ExampleSchedule_JobDegradations prints each job's slowdown, sorted.
func ExampleSchedule_JobDegradations() {
	w := cosched.NewWorkload()
	for _, name := range []string{"BT", "CG", "EP", "FT"} {
		w.AddSerial(name)
	}
	inst, err := w.Build(cosched.QuadCore)
	if err != nil {
		panic(err)
	}
	sched, err := cosched.Solve(inst, cosched.Options{Method: cosched.MethodBruteForce})
	if err != nil {
		panic(err)
	}
	degs := sched.JobDegradations()
	names := make([]string, 0, len(degs))
	for n := range degs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s degrades\n", n)
	}
	// Output:
	// BT degrades
	// CG degrades
	// EP degrades
	// FT degrades
}
