// Package cosched finds contention-aware co-schedules for a mix of serial
// and parallel jobs on multicore machines, implementing the methods of
// Zhu, He, Gao, Li & Li, "Modelling and Developing Co-scheduling
// Strategies on Multicore Processors" (ICPP 2015):
//
//   - OA*: an extended A*-search over the co-scheduling graph that finds
//     the provably minimal total-degradation schedule (§III),
//   - HA*: a heuristic A* that trims each graph level to its n/u cheapest
//     candidate nodes and finds near-optimal schedules orders of magnitude
//     faster (§IV),
//   - IP: an integer-programming formulation solved by branch-and-bound
//     (§II),
//   - O-SVP and PG: the two baselines the paper compares against,
//   - BruteForce: exhaustive enumeration for verification on small
//     batches.
//
// The quickstart:
//
//	w := cosched.NewWorkload()
//	w.AddSerial("art")
//	w.AddSerial("EP")
//	w.AddPC("MG-Par", 4)
//	inst, _ := w.Build(cosched.QuadCore)
//	sched, _ := cosched.Solve(inst, cosched.Options{Method: cosched.MethodOAStar})
//	fmt.Println(sched.AvgDegradation())
package cosched

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"cosched/internal/abort"
	"cosched/internal/astar"
	"cosched/internal/bruteforce"
	"cosched/internal/degradation"
	"cosched/internal/graph"
	"cosched/internal/ip"
	"cosched/internal/osvp"
	"cosched/internal/pg"
	"cosched/internal/telemetry"
)

// Method selects the co-scheduling algorithm.
type Method int

const (
	// MethodOAStar is the Optimal A*-search (§III): exact, with h(v)
	// pruning and optional process condensation.
	MethodOAStar Method = iota
	// MethodHAStar is the Heuristic A*-search (§IV): near-optimal, each
	// level trimmed to the first MER = n/u candidate nodes by weight.
	MethodHAStar
	// MethodIP solves the integer-programming formulation (§II) by
	// branch-and-bound.
	MethodIP
	// MethodOSVP is the Dijkstra-based optimal baseline of [33].
	MethodOSVP
	// MethodPG is the politeness-greedy heuristic baseline of [18].
	MethodPG
	// MethodBruteForce enumerates all partitions (verification only;
	// guarded to small batches).
	MethodBruteForce
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodOAStar:
		return "OA*"
	case MethodHAStar:
		return "HA*"
	case MethodIP:
		return "IP"
	case MethodOSVP:
		return "O-SVP"
	case MethodPG:
		return "PG"
	case MethodBruteForce:
		return "brute-force"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Accounting selects how parallel jobs enter the objective, matching the
// paper's three OA* variants (§V-B).
type Accounting int

const (
	// AccountPC is the full model: per-parallel-job maxima with
	// communication-combined degradation for PC jobs (Eq. 9 + Eq. 13).
	// This is the default and what OA*-PC uses.
	AccountPC Accounting = iota
	// AccountPE recognises per-job maxima but ignores communication
	// (OA*-PE).
	AccountPE
	// AccountSE treats every process as serial and sums everything
	// (Eq. 12; OA*-SE).
	AccountSE
)

// AbortReason says why a solve stopped before proving its answer. The
// zero value AbortNone means the solve completed normally; any other
// value accompanies Stats.Degraded on a best-effort schedule.
type AbortReason = abort.Reason

// The abort reasons a degraded solve can carry: the context deadline
// expired (AbortDeadline), the context was cancelled (AbortCancel), the
// MaxExpansions / IP node cap was hit (AbortExpansions), or the search's
// estimated live footprint breached MemoryBudget (AbortMemory).
const (
	AbortNone       = abort.None
	AbortDeadline   = abort.Deadline
	AbortCancel     = abort.Cancel
	AbortExpansions = abort.Expansions
	AbortMemory     = abort.Memory
)

// PanicError wraps a panic recovered at the Solve boundary — typically
// thrown by a user-supplied callback (tracer, event sink) — so a
// misbehaving observer fails the one solve instead of crashing the
// process. The event sink is flushed before the error is returned, so
// the partial trace survives for post-mortem analysis.
type PanicError = abort.PanicError

// OptionError reports an Options field that cannot be meaningfully
// interpreted (negative budgets, NaN weights, unknown preset names).
// Solve and SolveContext validate options up front and return it before
// doing any work.
type OptionError struct {
	// Field is the Options field name, Value its rejected value and
	// Reason why it was rejected.
	Field  string
	Value  any
	Reason string
}

// Error implements the error interface.
func (e *OptionError) Error() string {
	return fmt.Sprintf("cosched: invalid option %s = %v: %s", e.Field, e.Value, e.Reason)
}

func (a Accounting) mode() degradation.Mode {
	switch a {
	case AccountSE:
		return degradation.ModeSE
	case AccountPE:
		return degradation.ModePE
	default:
		return degradation.ModePC
	}
}

// Options tunes a Solve call. The zero value requests OA* with the
// paper's best configuration (h Strategy 2 or the scalable per-process
// variant, condensation on, full PC accounting).
type Options struct {
	Method     Method
	Accounting Accounting
	// HStrategy: 0 = automatic (Strategy 2 when levels are enumerable,
	// per-process bound otherwise), 1 and 2 force the paper's two
	// strategies, 3 forces the scalable per-process bound.
	HStrategy int
	// KPerLevel overrides HA*'s per-level candidate budget; 0 means the
	// paper's MER function n/u. Ignored by other methods.
	KPerLevel int
	// DisableCondensation turns off the §III-E process condensation.
	DisableCondensation bool
	// ExactParallel strengthens OA*'s dismissal key with per-job maxima
	// (see DESIGN.md §3).
	ExactParallel bool
	// HWeight inflates the graph-search heuristic: f = g + HWeight·h
	// (weighted A*). Zero means 1. Only meaningful for MethodHAStar;
	// OA* rejects values above 1 because they forfeit optimality.
	HWeight float64
	// BeamWidth, when positive, turns MethodHAStar into a beam search
	// that expands at most BeamWidth elements per path depth — strictly
	// bounded work, the most robust rung short of PG. Zero means the
	// method's default (unbounded below 40 processes).
	BeamWidth int
	// Parallelism sets the number of expansion workers for the graph
	// searches (OA*/HA*): 0 picks runtime.GOMAXPROCS(0), 1 forces the
	// exact legacy sequential path, higher values run the sharded-frontier
	// parallel engine when the configuration's answer is order-independent
	// (admissible unweighted heuristics, or any beam search) and silently
	// fall back to sequential otherwise. The schedule's Stats.Parallelism
	// records what actually ran. IP/PG/O-SVP/brute-force ignore it.
	Parallelism int
	// IPConfig selects the branch-and-bound preset by name
	// ("bnb-best+round", "bnb-best", "bnb-depth", "bnb-basic"); empty
	// means the strongest.
	IPConfig string
	// TimeLimit aborts the solve after this much wall clock (0 = none).
	// Graph searches and IP then return their best incumbent as a
	// degraded schedule (Stats.Degraded, Stats.AbortReason) instead of
	// an error. Prefer SolveContext with a deadline when callers need
	// cancellation too.
	TimeLimit time.Duration
	// MaxExpansions stops graph searches after this many expansions —
	// and IP solves after this many branch-and-bound nodes — returning
	// the best incumbent as a degraded schedule (0 = none).
	MaxExpansions int64
	// MemoryBudget, when positive, caps a graph search's estimated live
	// byte footprint (pooled elements, dismissal-key table, priority
	// list). On breach the search returns its best incumbent as a
	// degraded schedule (AbortMemory) instead of growing the frontier
	// until the process dies. Zero means unbounded; IP/PG/brute-force
	// ignore it.
	MemoryBudget int64
	// TraceWriter, when non-nil, receives a text trace of the graph
	// search (sampled expansions plus the final solution).
	TraceWriter io.Writer
	// EventTraceWriter, when non-nil, receives the machine-readable JSONL
	// event stream of the solve (telemetry.Event per line: solve_start,
	// expansions, dismissals with reason, progress, phase spans, final
	// stats, solution; see DESIGN.md §6). Takes precedence over
	// TraceWriter when both are set. The stream is what cmd/coschedtrace
	// analyses offline.
	EventTraceWriter io.Writer
	// EventSink, when non-nil, receives the same event stream through the
	// telemetry.EventSink interface — typically a FlightRecorder keeping
	// the last N events in memory for post-hoc dumps. When both
	// EventTraceWriter and EventSink are set, events fan out to both.
	EventSink telemetry.EventSink
	// Metrics, when non-nil, receives live solver telemetry: the method's
	// counter/gauge family ("astar.*", "ip.*", "osvp.*", "pg.*") as
	// catalogued in DESIGN.md §6. Pass telemetry.Default to feed the
	// registry the CLIs publish over expvar.
	Metrics *telemetry.Registry
	// ProgressWriter, when non-nil, receives rate-limited human-readable
	// progress lines (pops, pops/sec, frontier size, ETA) during long
	// graph searches. ProgressEvery sets the line interval (0 = 2s).
	ProgressWriter io.Writer
	ProgressEvery  time.Duration
}

// validate rejects option values that have no meaningful interpretation
// before any solver work starts, so nonsense surfaces as a typed
// OptionError instead of a hang, a panic or a silently absurd schedule.
func (o *Options) validate() error {
	if o.Method < MethodOAStar || o.Method > MethodBruteForce {
		return &OptionError{Field: "Method", Value: int(o.Method), Reason: "unknown method"}
	}
	if o.Accounting < AccountPC || o.Accounting > AccountSE {
		return &OptionError{Field: "Accounting", Value: int(o.Accounting), Reason: "unknown accounting mode"}
	}
	if o.HStrategy < 0 || o.HStrategy > 3 {
		return &OptionError{Field: "HStrategy", Value: o.HStrategy, Reason: "must be 0 (auto), 1, 2 or 3"}
	}
	if o.KPerLevel < 0 {
		return &OptionError{Field: "KPerLevel", Value: o.KPerLevel, Reason: "must be non-negative"}
	}
	if math.IsNaN(o.HWeight) || o.HWeight < 0 {
		return &OptionError{Field: "HWeight", Value: o.HWeight, Reason: "must be a non-negative number"}
	}
	if o.BeamWidth < 0 {
		return &OptionError{Field: "BeamWidth", Value: o.BeamWidth, Reason: "must be non-negative"}
	}
	if o.TimeLimit < 0 {
		return &OptionError{Field: "TimeLimit", Value: o.TimeLimit, Reason: "must be non-negative"}
	}
	if o.MaxExpansions < 0 {
		return &OptionError{Field: "MaxExpansions", Value: o.MaxExpansions, Reason: "must be non-negative"}
	}
	if o.MemoryBudget < 0 {
		return &OptionError{Field: "MemoryBudget", Value: o.MemoryBudget, Reason: "must be non-negative"}
	}
	if o.Parallelism < 0 {
		return &OptionError{Field: "Parallelism", Value: o.Parallelism, Reason: "must be non-negative"}
	}
	if o.IPConfig != "" {
		found := false
		for _, c := range ip.Configs() {
			if c.Name == o.IPConfig {
				found = true
				break
			}
		}
		if !found {
			return &OptionError{Field: "IPConfig", Value: o.IPConfig, Reason: "unknown branch-and-bound preset"}
		}
	}
	return nil
}

// solveObs bundles the per-call observation state every Solve carries:
// one solve id shared by every producer of the call, the phase-span
// recorder (always on — four clock reads per solve — so Stats.Phases is
// populated even without telemetry), and the optional event sink.
type solveObs struct {
	sink    telemetry.EventSink
	spans   *telemetry.SpanRecorder
	solveID uint64
}

func newSolveObs(opts *Options) *solveObs {
	sink := opts.EventSink
	if opts.EventTraceWriter != nil {
		sink = telemetry.MultiSink(telemetry.NewEventWriter(opts.EventTraceWriter), sink)
	}
	id := telemetry.NextSolveID()
	return &solveObs{
		sink:    sink,
		spans:   telemetry.NewSpanRecorder(opts.Metrics, sink, id),
		solveID: id,
	}
}

// phases converts the completed spans into the Stats breakdown.
func (o *solveObs) phases() []Phase {
	res := o.spans.Results()
	if len(res) == 0 {
		return nil
	}
	out := make([]Phase, len(res))
	for i, r := range res {
		out[i] = Phase{Name: r.Name, Duration: time.Duration(r.DurMS * float64(time.Millisecond))}
	}
	return out
}

// Solve schedules the instance's batch and returns the schedule. It is
// SolveContext with a background context: no cancellation, no deadline.
func Solve(inst *Instance, opts Options) (*Schedule, error) {
	return SolveContext(context.Background(), inst, opts)
}

// SolveContext is Solve with cancellation: the context's deadline and
// cancellation are polled inside the solver hot loops (once per graph
// pop / branch-and-bound node), so a cancel stops the solve promptly —
// mid-frontier, not only at the next TimeLimit check. A solve stopped
// early does not fail: it returns the best incumbent found so far as a
// feasible *Schedule flagged Stats.Degraded, with Stats.AbortReason
// saying why (AbortDeadline, AbortCancel, AbortExpansions, AbortMemory).
//
// Invalid options are rejected up front with an *OptionError, and a
// panic thrown by a user-supplied callback (tracer, event sink) is
// recovered at this boundary into a *PanicError after flushing the
// event sink, so one misbehaving observer cannot take down the process.
func SolveContext(ctx context.Context, inst *Instance, opts Options) (sched *Schedule, err error) {
	if inst == nil || inst.in == nil {
		return nil, fmt.Errorf("cosched: nil instance")
	}
	if verr := opts.validate(); verr != nil {
		return nil, verr
	}
	if ctx == nil {
		ctx = context.Background()
	}
	obs := newSolveObs(&opts)
	defer func() {
		if r := recover(); r != nil {
			telemetry.FlushSink(obs.sink) //nolint:errcheck // keep the partial trace
			sched, err = nil, abort.Recovered(r)
		}
	}()
	sp := obs.spans.Start("oracle")
	cost := inst.in.Cost(opts.Accounting.mode())
	sp.End()
	switch opts.Method {
	case MethodOAStar, MethodHAStar, MethodOSVP:
		sched, err = solveGraph(ctx, inst, cost, opts, obs)
	case MethodIP:
		sched, err = solveIP(ctx, inst, cost, opts, obs)
	case MethodPG:
		sp = obs.spans.Start("search")
		res := pg.SolveObserved(cost, opts.Metrics)
		sp.End()
		// PG is a one-pass greedy pairing: it always finishes, so an
		// already-done context only marks its answer degraded rather
		// than suppressing it — PG is the ladder rung that never fails.
		st := Stats{}
		if ctx.Err() != nil {
			st.Degraded = true
			st.AbortReason = abort.FromContext(ctx)
		}
		sched = newSchedule(inst, cost, res.Groups, res.Cost, st)
	case MethodBruteForce:
		sp = obs.spans.Start("search")
		res, bfErr := bruteforce.SolveContext(ctx, cost)
		sp.End()
		if bfErr != nil {
			telemetry.FlushSink(obs.sink) //nolint:errcheck // keep the partial trace
			return nil, bfErr
		}
		sched = newSchedule(inst, cost, res.Groups, res.Cost, Stats{
			Degraded:    res.Degraded,
			AbortReason: res.Aborted,
		})
	default:
		return nil, &OptionError{Field: "Method", Value: int(opts.Method), Reason: "unknown method"}
	}
	if err != nil {
		telemetry.FlushSink(obs.sink) //nolint:errcheck // keep the partial trace
		return nil, err
	}
	sched.Stats.Phases = obs.phases()
	sched.Stats.SolveID = obs.solveID
	telemetry.FlushSink(obs.sink) //nolint:errcheck // span events after the solution
	return sched, nil
}

func solveGraph(ctx context.Context, inst *Instance, cost *degradation.Cost, opts Options, obs *solveObs) (*Schedule, error) {
	sp := obs.spans.Start("graph")
	g := graph.New(cost, inst.in.Patterns)
	sp.End()
	n, u := g.N(), g.U()
	par := opts.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	aopts := astar.Options{
		Condense:      !opts.DisableCondensation,
		ExactParallel: opts.ExactParallel,
		MaxExpansions: opts.MaxExpansions,
		TimeLimit:     opts.TimeLimit,
		MemoryBudget:  opts.MemoryBudget,
		Parallelism:   par,
		Ctx:           ctx,
		Metrics:       opts.Metrics,
	}
	var tr *astar.EventTracer
	if opts.TraceWriter != nil {
		aopts.Tracer = &astar.WriterTracer{W: opts.TraceWriter, Every: 100}
	}
	if obs.sink != nil {
		tr = astar.NewEventTracer(obs.sink)
		tr.SolveID = obs.solveID
		tr.Epoch = obs.spans.Epoch()
		aopts.Tracer = tr
	}
	if opts.ProgressWriter != nil {
		aopts.Progress = &telemetry.ProgressReporter{W: opts.ProgressWriter, Every: opts.ProgressEvery}
	}
	switch opts.HStrategy {
	case 1:
		aopts.H = astar.HStrategy1
	case 2:
		aopts.H = astar.HStrategy2
	case 3:
		aopts.H = astar.HPerProc
	default:
		// HStrategy2 builds its level-minima table lazily and cannot run
		// multi-worker; with parallelism requested the auto pick prefers
		// the admissible per-process bound so the parallel engine engages.
		if g.LevelEnumerable(1) && n <= 40 && par <= 1 {
			aopts.H = astar.HStrategy2
		} else {
			aopts.H = astar.HPerProc
		}
	}
	switch opts.Method {
	case MethodOSVP:
		sp = obs.spans.Start("search")
		res, err := osvp.SolveOpts(g, osvp.Options{
			MaxExpansions: opts.MaxExpansions,
			TimeLimit:     opts.TimeLimit,
			Ctx:           ctx,
			MemoryBudget:  opts.MemoryBudget,
			Metrics:       opts.Metrics,
			Tracer:        aopts.Tracer,
			Progress:      aopts.Progress,
		})
		sp.End()
		if err != nil {
			return nil, err
		}
		return newSchedule(inst, cost, res.Groups, res.Cost, searchStats(res)), nil
	case MethodHAStar:
		aopts.KPerLevel = opts.KPerLevel
		if aopts.KPerLevel == 0 {
			aopts.KPerLevel = n / u // the paper's MER function
		}
		aopts.UseIncumbent = true
		// Large batches need the scalable estimator, a depth bias and a
		// bounded beam to converge (DESIGN.md §5a).
		if n > 40 {
			aopts.H = astar.HPerProcAvg
			aopts.HWeight = 1.2
			aopts.BeamWidth = 16
			aopts.UseIncumbent = false
		}
	}
	// Explicit caller overrides win over the method defaults; the beam
	// is what makes the SolveRobust ladder's third rung strictly bounded.
	if opts.BeamWidth > 0 && opts.Method == MethodHAStar {
		aopts.BeamWidth = opts.BeamWidth
		aopts.UseIncumbent = false
	}
	if opts.HWeight > 0 {
		aopts.HWeight = opts.HWeight
	}
	if tr != nil {
		tr.HName = aopts.H.String()
	}
	sp = obs.spans.Start("prepare")
	s, err := astar.NewSolver(g, aopts)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = obs.spans.Start("search")
	res, err := s.Solve()
	sp.End()
	if err != nil {
		return nil, err
	}
	return newSchedule(inst, cost, res.Groups, res.Cost, searchStats(res)), nil
}

func solveIP(ctx context.Context, inst *Instance, cost *degradation.Cost, opts Options, obs *solveObs) (*Schedule, error) {
	sp := obs.spans.Start("model")
	model, err := ip.BuildModel(cost)
	sp.End()
	if err != nil {
		return nil, err
	}
	cfg := ip.ConfigA
	if opts.IPConfig != "" {
		found := false
		for _, c := range ip.Configs() {
			if c.Name == opts.IPConfig {
				cfg, found = c, true
				break
			}
		}
		if !found {
			// validate() already vets the name; this guards direct callers.
			return nil, &OptionError{Field: "IPConfig", Value: opts.IPConfig, Reason: "unknown branch-and-bound preset"}
		}
	}
	cfg.Ctx = ctx
	cfg.TimeLimit = opts.TimeLimit
	if opts.MaxExpansions > 0 {
		cfg.MaxNodes = opts.MaxExpansions
	}
	cfg.Metrics = opts.Metrics
	cfg.Events = obs.sink
	cfg.SolveID = obs.solveID
	cfg.Epoch = obs.spans.Epoch()
	sp = obs.spans.Start("search")
	res, err := ip.Solve(model, cfg)
	sp.End()
	if err != nil {
		return nil, err
	}
	st := Stats{
		BBNodes:           res.Stats.Nodes,
		LPIters:           res.Stats.LPIters,
		BoundImprovements: res.Stats.BoundImprovements,
		Duration:          res.Stats.Duration,
		TimedOut:          res.Stats.TimedOut,
		Degraded:          res.Stats.Degraded,
		AbortReason:       res.Stats.Aborted,
	}
	return newSchedule(inst, cost, res.Groups, res.Cost, st), nil
}

func searchStats(r *astar.Result) Stats {
	return Stats{
		VisitedPaths:    r.Stats.VisitedPaths,
		Expanded:        r.Stats.Expanded,
		Generated:       r.Stats.Generated,
		Dismissed:       r.Stats.Dismissed,
		DismissedWorse:  r.Stats.DismissedWorse,
		Condensed:       r.Stats.Condensed,
		Pruned:          r.Stats.Pruned,
		BeamTrimmed:     r.Stats.BeamTrimmed,
		InFrontier:      r.Stats.InFrontier,
		MaxQueue:        r.Stats.MaxQueue,
		Duration:        r.Stats.Duration,
		PrepareDuration: r.Stats.PrepareDuration,
		ElemAllocated:   r.Stats.ElemAllocated,
		ElemReused:      r.Stats.ElemReused,
		KeyTableEntries: r.Stats.KeyTableEntries,
		KeyTableLoad:    r.Stats.KeyTableLoad,
		Parallelism:     r.Stats.Parallelism,
		Steals:          r.Stats.Steals,
		Speculative:     r.Stats.Speculative,
		Parked:          r.Stats.Parked,
		Degraded:        r.Stats.Degraded,
		AbortReason:     r.Stats.Aborted,
	}
}
